"""Tests for the parallel portfolio engine, strategy specs and report
merging."""

import pickle

import pytest

from repro import (
    BugReport,
    IterativeDeepeningDfsStrategy,
    PortfolioEngine,
    RandomStrategy,
    ScheduleTrace,
    StrategySpec,
    TestingEngine,
    TestReport,
    default_portfolio,
    make_strategy,
    register_strategy,
    replay,
)
from repro.errors import PSharpError
from repro.testing.portfolio import strategy_names

from .machines import NondetBug, Ping, RacyCounter


class TestStrategyRegistry:
    def test_specs_build_registered_strategies(self):
        strategy = make_strategy(StrategySpec("random", {"seed": 3}))
        assert isinstance(strategy, RandomStrategy)
        assert StrategySpec("iddfs").build().name == "iddfs"

    def test_unknown_strategy_name_raises(self):
        with pytest.raises(PSharpError, match="unknown strategy"):
            make_strategy(StrategySpec("simulated-annealing"))

    def test_custom_strategies_can_be_registered(self):
        register_strategy("my-random", RandomStrategy)
        try:
            assert "my-random" in strategy_names()
            strategy = make_strategy(StrategySpec("my-random", {"seed": 9}))
            assert isinstance(strategy, RandomStrategy)
        finally:
            from repro.testing.portfolio import _STRATEGY_FACTORIES

            del _STRATEGY_FACTORIES["my-random"]

    def test_specs_are_picklable(self):
        spec = StrategySpec("pct", {"depth": 3, "seed": 1})
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_specs_are_hashable_by_value(self):
        a = StrategySpec("pct", {"depth": 3, "seed": 1})
        b = StrategySpec("pct", {"seed": 1, "depth": 3})
        c = StrategySpec("pct", {"depth": 4, "seed": 1})
        assert {a, b, c} == {a, c}

    def test_default_portfolio_is_diverse_and_seeded(self):
        specs = default_portfolio(6, seed=11)
        assert len(specs) == 6
        # Diversity: at least three distinct strategy kinds in a 6-pack.
        assert len({spec.name for spec in specs}) >= 3
        # Same-named workers must not duplicate each other's search.
        seeds = [spec.params["seed"] for spec in specs if "seed" in spec.params]
        assert len(seeds) == len(set(seeds))

    def test_unseeded_portfolio_varies_across_runs(self):
        first = default_portfolio(2)
        second = default_portfolio(2)
        assert first != second  # fresh entropy, like an unseeded RandomStrategy

    def test_default_portfolio_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            default_portfolio(0)


class TestIterativeDeepeningDfs:
    def test_finds_shallow_nondet_bug(self):
        engine = TestingEngine(
            NondetBug,
            strategy=IterativeDeepeningDfsStrategy(initial_depth=2),
            max_iterations=100,
        )
        report = engine.run()
        assert report.bug_found

    def test_exhausts_finite_space_without_deepening_forever(self):
        engine = TestingEngine(
            Ping,
            strategy=IterativeDeepeningDfsStrategy(initial_depth=4),
            max_iterations=10_000,
            time_limit=60,
        )
        report = engine.run()
        assert not report.bug_found
        assert report.exhausted


class TestReportMerging:
    def _report(self, **kwargs):
        defaults = dict(strategy="s", iterations=0)
        defaults.update(kwargs)
        return TestReport(**defaults)

    def test_merge_arithmetic(self):
        a = self._report(
            strategy="a", iterations=10, buggy_iterations=2, depth_bound_hits=1,
            total_steps=100, total_scheduling_points=50, max_machines=3,
            elapsed=2.0,
        )
        b = self._report(
            strategy="b", iterations=20, buggy_iterations=1, depth_bound_hits=0,
            total_steps=300, total_scheduling_points=80, max_machines=5,
            elapsed=1.5,
        )
        merged = TestReport.merged([a, b])
        assert merged.iterations == 30
        assert merged.buggy_iterations == 3
        assert merged.depth_bound_hits == 1
        assert merged.total_steps == 400
        assert merged.total_scheduling_points == 130
        assert merged.max_machines == 5
        # Concurrent work: wall-clock, not the sum.
        assert merged.elapsed == 2.0
        assert merged.schedules_per_second == 30 / 2.0
        assert merged.sub_reports == [a, b]

    def test_merge_keeps_fold_order_first_bug(self):
        bug_a = BugReport(kind="assertion-failure", message="a")
        bug_b = BugReport(kind="liveness", message="b")
        first = self._report(first_bug=None)
        second = self._report(first_bug=bug_a, first_bug_iteration=4, bugs=[bug_a])
        third = self._report(first_bug=bug_b, first_bug_iteration=1, bugs=[bug_b])
        merged = TestReport.merged([first, second, third])
        assert merged.first_bug is bug_a
        assert merged.first_bug_iteration == 4
        assert merged.bugs == [bug_a, bug_b]

    def test_merged_exhausted_requires_all_workers_exhausted(self):
        done = self._report(exhausted=True)
        ongoing = self._report(exhausted=False)
        assert TestReport.merged([done, done]).exhausted
        assert not TestReport.merged([done, ongoing]).exhausted
        assert not TestReport.merged([]).exhausted

    def test_detached_report_is_picklable_and_keeps_trace(self):
        engine = TestingEngine(
            RacyCounter, strategy=RandomStrategy(seed=3), max_iterations=500
        )
        report = engine.run()
        assert report.bug_found
        detached = report.detached()
        restored = pickle.loads(pickle.dumps(detached))
        assert restored.iterations == report.iterations
        assert restored.first_bug.kind == report.first_bug.kind
        assert isinstance(restored.first_bug.machine, str)
        assert restored.first_bug.trace.decisions == report.first_bug.trace.decisions


class TestPortfolioEngine:
    def test_first_bug_wins_cancels_other_workers(self):
        # One worker finds the ordering bug fast; the other (iddfs, which
        # explores systematically) would otherwise grind through its whole
        # 100k-iteration shard.  Cancellation must cut it short.
        engine = PortfolioEngine(
            RacyCounter,
            specs=[
                StrategySpec("random", {"seed": 1}),
                StrategySpec("iddfs", {}),
            ],
            max_iterations=100_000,
            time_limit=60,
            max_steps=2_000,
        )
        report = engine.run()
        assert report.bug_found
        assert report.first_bug is not None
        assert len(report.sub_reports) == 2
        assert all(sub.iterations < 100_000 for sub in report.sub_reports)

    def test_winning_trace_replays_to_same_bug(self):
        engine = PortfolioEngine(
            RacyCounter,
            specs=default_portfolio(3, seed=5),
            max_iterations=2_000,
            time_limit=60,
            max_steps=2_000,
        )
        report = engine.run()
        assert report.first_bug is not None
        assert isinstance(report.first_bug.trace, ScheduleTrace)

        # Replay in the parent process: same bug type, same message.
        result = replay(RacyCounter, report.first_bug.trace, max_steps=2_000)
        assert result.buggy
        assert result.bug.kind == report.first_bug.kind
        assert result.bug.message == report.first_bug.message

        # The engine's convenience wrapper does the same.
        again = engine.replay_winner(report)
        assert again is not None and again.bug.kind == report.first_bug.kind

    def test_one_worker_portfolio_matches_testing_engine(self):
        # A 1-worker portfolio runs the exact driver loop TestingEngine
        # runs; with the same seeded strategy the exploration statistics
        # must match field for field.
        kwargs = dict(max_iterations=60, max_steps=2_000, stop_on_first_bug=False)
        single = TestingEngine(
            RacyCounter, strategy=RandomStrategy(seed=42), time_limit=60, **kwargs
        ).run()
        portfolio = PortfolioEngine(
            RacyCounter,
            specs=[StrategySpec("random", {"seed": 42})],
            time_limit=60,
            **kwargs,
        ).run()
        assert len(portfolio.sub_reports) == 1
        shard = portfolio.sub_reports[0]
        assert shard.iterations == single.iterations
        assert shard.buggy_iterations == single.buggy_iterations
        assert shard.total_steps == single.total_steps
        assert shard.total_scheduling_points == single.total_scheduling_points
        assert shard.max_machines == single.max_machines
        assert portfolio.iterations == single.iterations

    def test_no_bug_campaign_reports_all_shards(self):
        engine = PortfolioEngine(
            Ping,
            specs=[
                StrategySpec("random", {"seed": 0}),
                StrategySpec("delay-bounding", {"seed": 0, "delays": 2}),
            ],
            max_iterations=25,
            time_limit=60,
            max_steps=2_000,
        )
        report = engine.run()
        assert not report.bug_found
        assert report.first_bug is None
        assert report.iterations == 50
        assert [s.iterations for s in report.sub_reports] == [25, 25]
        assert engine.replay_winner(report) is None

    def test_deadline_bounds_the_campaign(self):
        engine = PortfolioEngine(
            RacyCounter,
            specs=default_portfolio(2, seed=1),
            max_iterations=10_000_000,
            time_limit=1.0,
            max_steps=2_000,
            stop_on_first_bug=False,
        )
        report = engine.run()
        # Workers must stop at the shared deadline, not at the iteration cap.
        assert report.elapsed < 30.0
        assert all(sub.iterations < 10_000_000 for sub in report.sub_reports)

    def test_rejects_empty_and_conflicting_configs(self):
        with pytest.raises(ValueError):
            PortfolioEngine(Ping, specs=[])
        with pytest.raises(ValueError):
            PortfolioEngine(Ping, specs=default_portfolio(2), workers=3)

    def test_bad_specs_fail_fast_in_the_parent(self):
        # A typo'd strategy name or parameter must raise at construction,
        # not silently produce an empty worker shard at run() time.
        with pytest.raises(PSharpError, match="unknown strategy"):
            PortfolioEngine(Ping, specs=[StrategySpec("randm", {})])
        with pytest.raises(PSharpError, match="invalid parameters"):
            PortfolioEngine(Ping, specs=[StrategySpec("pct", {"depht": 3})])
