"""Core-language programs used across the lang/analysis test suites.

``LIST_MANAGER`` is the paper's running example (Examples 4.1/4.2): a
machine managing a linked list that races because a reference to the list
is still held after being sent.  The ``sum_list`` state makes the race
concrete: the manager traverses the list it already gave away while the
client mutates it.  ``LIST_MANAGER_FIXED`` is the Example 5.5 repair
(``this.list := null`` after the send), which makes the traversal a no-op.
"""

ELEM_CLASS = """
class elem {
    int val;
    elem next;
    int get_val() { int ret; ret := this.val; return ret; }
    elem get_next() { elem ret; ret := this.next; return ret; }
    void set_val(int v) { this.val := v; }
    void set_next(elem n) { this.next := n; }
}
"""

_MANAGER_BODY = """
    elem list;
    void init() { this.list := null; }
    void add(elem payload) {
        elem tmp;
        tmp := this.list;
        payload.set_next(tmp);
        this.list := payload;
    }
    void get(machine payload) {
        elem tmp;
        tmp := this.list;
        send payload eReply(tmp);
        %s
    }
    void sum_list(int payload) {
        elem cur;
        int s;
        int v;
        bool more;
        s := 0;
        cur := this.list;
        more := cur != null;
        while (more) {
            v := cur.get_val();
            s := s + v;
            cur := cur.get_next();
            more := cur != null;
        }
    }
    transitions {
        init:     eAdd -> add, eGet -> get, eSum -> sum_list;
        add:      eAdd -> add, eGet -> get, eSum -> sum_list;
        get:      eAdd -> add, eGet -> get, eSum -> sum_list;
        sum_list: eAdd -> add, eGet -> get, eSum -> sum_list;
    }
"""

_CLIENT = """
machine client {
    elem item;
    void init() {
        elem e;
        machine mgr;
        e := new elem;
        e.set_val(1);
        mgr := create list_manager();
        send mgr eAdd(e);
        send mgr eGet(me);
        send mgr eSum(0);
    }
    void got(elem payload) {
        this.item := payload;
        payload.set_val(2);
    }
    transitions {
        init: eReply -> got;
        got:  eReply -> got;
    }
}
"""

LIST_MANAGER = (
    ELEM_CLASS
    + "machine list_manager {"
    + _MANAGER_BODY % ""  # reference to the sent list is retained: racy
    + "}"
    + _CLIENT
)

LIST_MANAGER_FIXED = (
    ELEM_CLASS
    + "machine list_manager {"
    + _MANAGER_BODY % "this.list := null;"  # Example 5.5 repair
    + "}"
    + _CLIENT
)

COUNTER = """
machine counter {
    int count;
    void init() { this.count := 0; }
    void bump(int payload) {
        int c;
        c := this.count;
        c := c + payload;
        this.count := c;
        assert c;
    }
    transitions {
        init: eBump -> bump;
        bump: eBump -> bump;
    }
}

machine driver {
    void init() {
        machine c;
        c := create counter();
        send c eBump(1);
        send c eBump(2);
    }
    transitions { init: eNever -> init; }
}
"""

ASSERT_FAIL = """
machine failing {
    void init() {
        int zero;
        zero := 0;
        assert zero;
    }
    transitions { init: eNever -> init; }
}
"""

NONDET_ASSERT = """
machine coin {
    void init() {
        bool a;
        bool b;
        bool bad;
        int zero;
        a := nondet;
        b := nondet;
        bad := a && b;
        if (bad) {
            zero := 0;
            assert zero;
        }
    }
    transitions { init: eNever -> init; }
}
"""
