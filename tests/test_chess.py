"""Tests for the CHESS-style baseline runtime."""

from repro import DfsStrategy, RandomStrategy
from repro.chess import ChessRuntime, chess_engine
from repro.testing import BugFindingRuntime

from .machines import Ping, RacyCounter


def _run(runtime_cls, main_cls, seed=0, **kwargs):
    strategy = RandomStrategy(seed=seed)
    strategy.prepare_iteration()
    runtime = runtime_cls(strategy, **kwargs)
    result = runtime.execute(main_cls)
    return runtime, result


class TestChessRuntime:
    def test_program_still_completes(self):
        runtime, result = _run(ChessRuntime, Ping)
        assert result.status == "ok"
        ping = runtime.machines[0]
        assert ping.count == 3

    def test_many_more_scheduling_points_than_psharp(self):
        # The core of Table 2's speed difference: CHESS schedules at every
        # visible operation, P# only at send/create.
        _, chess_result = _run(ChessRuntime, Ping)
        _, psharp_result = _run(BugFindingRuntime, Ping)
        assert (
            chess_result.scheduling_points
            >= 2 * psharp_result.scheduling_points
        )

    def test_no_races_reported_on_race_free_program(self):
        # "With data race detection enabled, CHESS did not find any races"
        runtime, result = _run(ChessRuntime, Ping, race_detection=True)
        assert result.status == "ok"
        assert runtime.races == []

    def test_finds_same_bugs(self):
        engine = chess_engine(
            RacyCounter,
            strategy=RandomStrategy(seed=1),
            race_detection=False,
            max_iterations=300,
        )
        report = engine.run()
        assert report.bug_found

    def test_rd_off_faster_than_rd_on(self):
        # Directional overhead check with a generous margin: RD-on does
        # vector-clock work on every field access.
        import time

        def measure(rd):
            start = time.perf_counter()
            engine = chess_engine(
                Ping,
                strategy=RandomStrategy(seed=2),
                race_detection=rd,
                max_iterations=60,
                stop_on_first_bug=False,
            )
            engine.run()
            return time.perf_counter() - start

        slow = measure(True)
        fast = measure(False)
        # Don't assert a strict ratio (timer noise); RD-on must not be
        # dramatically faster.
        assert slow > fast * 0.5

    def test_dfs_works_under_chess(self):
        strategy = DfsStrategy()
        strategy.prepare_iteration()
        runtime = ChessRuntime(strategy, race_detection=False)
        result = runtime.execute(Ping)
        assert result.status == "ok"
