"""Tests for the Python -> IR frontend: the same Machine classes that run
under the SCT runtime are lowered and statically analyzed."""

import pytest

from repro import Event, Machine, State
from repro.analysis import analyze_program
from repro.analysis.frontend import (
    FrontendError,
    analyze_machines,
    lower_machines,
)
from repro.lang.ir import Call, Send, StoreField, flatten


class EItem(Event):
    pass


class EAck(Event):
    pass


class RacySender(Machine):
    """Sends a list it keeps mutating: a real race, must be flagged."""

    class Init(State):
        initial = True
        entry = "setup"
        actions = {EAck: "on_ack"}

    def setup(self):
        self.data = [1, 2, 3]
        self.peer = self.create_machine(ReadingPeer, self.id)
        self.send(self.peer, EItem(self.data))

    def on_ack(self):
        self.data.append(4)  # mutation of heap already given away


class SafeSender(Machine):
    """Sends a fresh list each time and forgets it: race-free."""

    class Init(State):
        initial = True
        entry = "setup"
        actions = {EAck: "on_ack"}

    def setup(self):
        self.peer = self.create_machine(ReadingPeer, self.id)
        payload = [1, 2, 3]
        self.send(self.peer, EItem(payload))

    def on_ack(self):
        fresh = [self.nondet_int(10)]
        self.send(self.peer, EItem(fresh))


class StagedSender(Machine):
    """The xSA pattern: payload staged in a field in one state, sent and
    reset in another."""

    class Staging(State):
        initial = True
        entry = "stage"
        transitions = {EAck: "Flushing"}

    class Flushing(State):
        entry = "flush"
        transitions = {EAck: "Staging"}

    def stage(self):
        self.pending = [1, 2]
        self.peer = self.create_machine(ReadingPeer, self.id)
        self.send(self.id, EAck())

    def flush(self):
        data = self.pending
        self.pending = None
        self.send(self.peer, EItem(data))
        self.send(self.id, EAck())


class ReadingPeer(Machine):
    class Init(State):
        initial = True
        entry = "setup"
        actions = {EItem: "on_item"}

    def setup(self):
        self.parent = self.payload
        self.total = 0

    def on_item(self):
        items = self.payload
        for value in items:
            self.total = self.total + value
        self.send(self.parent, EAck())


class TestLowering:
    def test_machines_lowered_to_program(self):
        program = lower_machines([SafeSender, ReadingPeer], name="safe")
        assert set(program.machines) == {"SafeSender", "ReadingPeer"}
        sender = program.classes["SafeSender"]
        assert "setup" in sender.methods
        assert "on_ack" in sender.methods

    def test_send_lowered_with_event_name(self):
        program = lower_machines([SafeSender, ReadingPeer])
        setup = program.classes["SafeSender"].methods["setup"]
        sends = [s for s in flatten(setup.body) if isinstance(s, Send)]
        assert len(sends) == 1
        assert sends[0].event == "EItem"
        assert sends[0].arg is not None

    def test_field_writes_lowered_to_storefield(self):
        program = lower_machines([SafeSender, ReadingPeer])
        setup = program.classes["SafeSender"].methods["setup"]
        stores = [s for s in flatten(setup.body) if isinstance(s, StoreField)]
        assert {s.field for s in stores} == {"peer"}

    def test_container_methods_lowered_to_calls(self):
        program = lower_machines([RacySender, ReadingPeer])
        on_ack = program.classes["RacySender"].methods["on_ack"]
        calls = [s for s in flatten(on_ack.body) if isinstance(s, Call)]
        assert any(c.method == "append" for c in calls)

    def test_transitions_and_actions_become_handlers(self):
        program = lower_machines([StagedSender, ReadingPeer])
        decl = program.machines["StagedSender"]
        events = {(h.state, h.event) for h in decl.handlers}
        assert ("Staging", "EAck") in events
        assert ("Flushing", "EAck") in events

    def test_payload_type_inferred_from_senders(self):
        program = lower_machines([RacySender, ReadingPeer])
        on_item = program.classes["ReadingPeer"].methods["on_item"]
        payload_param = on_item.params[0]
        assert payload_param.name == "$payload"
        assert payload_param.type == "list"

    def test_unsupported_construct_reported(self):
        class BreakUser(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                for i in range(3):
                    break

        with pytest.raises(FrontendError, match="break"):
            lower_machines([BreakUser])


class TestEndToEndAnalysis:
    def test_racy_sender_flagged(self):
        analysis = analyze_machines([RacySender, ReadingPeer], name="racy")
        assert not analysis.verified
        methods = {v.site.info.decl.name for _m, v in analysis.surviving()}
        assert "setup" in methods  # the send of self.data

    def test_safe_sender_verified(self):
        analysis = analyze_machines([SafeSender, ReadingPeer], name="safe")
        assert analysis.verified, [
            str(d) for d in analysis.to_report().diagnostics
        ]

    def test_staged_sender_needs_xsa(self):
        without = analyze_machines(
            [StagedSender, ReadingPeer], name="staged", xsa=False
        )
        assert not without.verified
        with_xsa = analyze_machines(
            [StagedSender, ReadingPeer], name="staged", xsa=True
        )
        assert with_xsa.verified, [
            str(d) for d in with_xsa.to_report().diagnostics
        ]

    def test_runtime_execution_matches_analysis(self):
        # The very same classes run under the SCT runtime.
        from repro import RandomStrategy, TestingEngine

        engine = TestingEngine(
            SafeSender, strategy=RandomStrategy(seed=0), max_iterations=20,
            stop_on_first_bug=False, max_steps=2_000,
        )
        report = engine.run()
        assert report.iterations == 20
        assert not report.bug_found
