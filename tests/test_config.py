"""Tests for the declarative campaign facade (``TestConfig``/``Campaign``)
and the ``workers="auto"`` inline-first back-end resolution.

The load-bearing property here is *bit-identity under fallback*: a
campaign that starts on the inline backend and transparently falls back
to pooled threads (because some machine class cannot be compiled to a
coroutine) must explore exactly the schedules an explicit
``workers="pool"`` campaign with the same seed explores.
"""

import dataclasses
import pickle

import pytest

from repro import (
    Campaign,
    DfsStrategy,
    Event,
    Machine,
    PortfolioEngine,
    RandomStrategy,
    State,
    StrategySpec,
    TestConfig,
    TestingEngine,
    replay,
)
from repro.bench.registry import resolve_target
from repro.errors import PSharpError
from repro.testing import BugFindingRuntime, ScheduleTrace
from repro.testing.engine import drive
from repro.testing.strategies import (
    DelayBoundingStrategy,
    FairRandomStrategy,
    IterativeDeepeningDfsStrategy,
    PctStrategy,
)

from .machines import Ping, RacyCounter


class EKick(Event):
    pass


class EReply(Event):
    pass


class Echo(Machine):
    """Replies with its own id; the reply arrival order is the race."""

    class Init(State):
        initial = True
        actions = {EKick: "on_kick"}

    def on_kick(self):
        self.send(self.payload, EReply(self.id.value))
        self.halt()


class _RacerMixin(Machine):
    """Two children race their replies; out-of-id-order arrival is the
    seeded bug, so some (not all) schedules are buggy.  (No states here —
    concrete subclasses declare their own Init so validation sees the
    ``go`` entry they define.)"""

    def on_reply(self):
        self.order.append(self.payload)
        if len(self.order) == 2:
            self.assert_that(
                self.order == sorted(self.order), "replies out of order"
            )
            self.halt()


class LambdaRacer(_RacerMixin):
    """Non-reshapeable *main* class: sends hide inside a lambda, which the
    coroutine compiler rejects, so ``workers="auto"`` must resolve to the
    pooled backend before the strategy is ever consulted."""

    class Init(State):
        initial = True
        entry = "go"
        actions = {EReply: "on_reply"}

    def go(self):
        self.order = []
        for _ in range(2):
            child = self.create_machine(Echo, self.id)
            fire = lambda c=child: self.send(c, EKick(self.id))  # noqa: E731
            fire()


class MidCampaignRacer(_RacerMixin):
    """Compiles fine itself but creates a child that does not: the
    failure surfaces mid-execution, forcing the transparent restart."""

    class Init(State):
        initial = True
        entry = "go"
        actions = {EReply: "on_reply"}

    def go(self):
        self.order = []
        for _ in range(2):
            child = self.create_machine(LambdaEcho, self.id)
            self.send(child, EKick(self.id))


class LambdaEcho(Machine):
    class Init(State):
        initial = True
        actions = {EKick: "on_kick"}

    def on_kick(self):
        reply = lambda: self.send(self.payload, EReply(self.id.value))  # noqa: E731
        reply()
        self.halt()


def _campaign_fingerprints(main_cls, workers, seed=3, iterations=40):
    """Drive a fixed-budget campaign and fingerprint every buggy trace."""
    report = drive(
        main_cls,
        None,
        RandomStrategy(seed=seed),
        max_iterations=iterations,
        time_limit=30.0,
        max_steps=2_000,
        stop_on_first_bug=False,
        workers=workers,
    )
    return report, [bug.trace.fingerprint() for bug in report.bugs]


# ---------------------------------------------------------------------------
# TestConfig: validation, normalization, immutability
# ---------------------------------------------------------------------------
class TestTestConfigValidation:
    def test_strategy_string_normalizes_to_spec(self):
        config = TestConfig(program=Ping, strategy="pct,depth=10,seed=3")
        assert config.strategy == StrategySpec("pct", {"depth": 10, "seed": 3})

    def test_default_strategy_is_random(self):
        assert TestConfig(program=Ping).strategy == StrategySpec("random")

    def test_seed_folds_into_seedable_strategy_at_build_time(self):
        config = TestConfig(program=Ping, strategy="random", seed=9)
        # The stored spec keeps the user's spelling; folding happens in
        # strategy_spec()/build_strategy(), not at construction.
        assert "seed" not in config.strategy.params
        assert config.strategy_spec().params["seed"] == 9

    def test_explicit_strategy_seed_wins_over_campaign_seed(self):
        config = TestConfig(program=Ping, strategy="random,seed=1", seed=9)
        assert config.strategy_spec().params["seed"] == 1

    def test_seed_not_folded_into_unseedable_strategy(self):
        config = TestConfig(program=Ping, strategy="dfs", seed=9)
        assert config.strategy_spec().params == {}

    def test_with_overrides_reseeds(self):
        # Regression: folding at construction used to freeze the first
        # seed into the spec, making later seed overrides silent no-ops.
        config = TestConfig(program=Ping, seed=1)
        derived = config.with_overrides(seed=13)
        assert derived.strategy_spec().params["seed"] == 13

    def test_seed_folds_into_portfolio_specs(self):
        config = TestConfig(
            program=Ping, seed=7,
            specs=("random", "pct,depth=5", "random,seed=2", "iddfs"),
        )
        folded = config.portfolio_specs()
        assert folded[0].params["seed"] == 7
        assert folded[1].params == {"depth": 5, "seed": 7}
        assert folded[2].params["seed"] == 2  # explicit seed wins
        assert folded[3].params == {}         # unseedable untouched

    def test_specs_normalize(self):
        config = TestConfig(
            program=Ping, specs=("random,seed=1", StrategySpec("iddfs"))
        )
        assert config.specs == (
            StrategySpec("random", {"seed": 1}),
            StrategySpec("iddfs"),
        )

    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": "turbo"},
            {"max_iterations": 0},
            {"max_steps": 0},
            {"time_limit": 0},
            {"max_hot_steps": 0},
            {"portfolio_workers": 0},
            {"specs": ()},
            {"strategy": 42},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(PSharpError):
            TestConfig(program=Ping, **overrides)

    def test_invalid_program_rejected(self):
        with pytest.raises(PSharpError):
            TestConfig(program=42)

    def test_frozen(self):
        config = TestConfig(program=Ping)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_iterations = 5

    def test_with_overrides_returns_new_validated_config(self):
        config = TestConfig(program=Ping, seed=7)
        derived = config.with_overrides(max_iterations=50, strategy="dfs")
        assert derived.max_iterations == 50
        assert derived.strategy == StrategySpec("dfs")
        assert config.max_iterations == 10_000  # original untouched
        with pytest.raises(PSharpError):
            config.with_overrides(workers="nope")

    def test_picklable(self):
        config = TestConfig(
            program="Raft", strategy="pct,depth=10", seed=7,
            specs=("random,seed=1",), monitors=(),
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_build_strategy(self):
        config = TestConfig(program=Ping, strategy="pct,depth=5,seed=2")
        strategy = config.build_strategy()
        assert strategy.name == "pct"


class TestTargetResolution:
    def test_machine_class_target(self):
        main_cls, payload, monitors = TestConfig(program=Ping).resolve_program()
        assert main_cls is Ping and payload is None and monitors == ()

    def test_benchmark_name_brings_buggy_variant_and_monitors(self):
        config = TestConfig(program="Raft")
        main_cls, payload, monitors = config.resolve_program()
        from repro.bench import get

        benchmark = get("Raft")
        assert main_cls is benchmark.buggy.main
        assert monitors == tuple(benchmark.buggy.monitors)
        assert payload == benchmark.buggy.payload

    def test_table_alias_resolves(self):
        variant = resolve_target("2PhaseCommit")
        from repro.bench import get

        assert variant is get("TwoPhaseCommit").buggy

    def test_module_class_target(self):
        variant = resolve_target("tests.machines:Ping")
        assert variant.main is Ping

    def test_config_monitors_override_registry_monitors(self):
        from repro.testing.monitors import Monitor

        class Quiet(Monitor):
            class Idle(State):
                initial = True

        config = TestConfig(program="Raft", monitors=(Quiet,))
        _, _, monitors = config.resolve_program()
        assert monitors == (Quiet,)

    @pytest.mark.parametrize(
        "target", ["NoSuchBenchmark", "nosuch.module:Thing",
                   "tests.machines:nope", "tests.machines:EPing"]
    )
    def test_bad_targets_raise(self, target):
        with pytest.raises(PSharpError):
            resolve_target(target)


class TestStrategySpecParse:
    def test_bare_name(self):
        assert StrategySpec.parse("random") == StrategySpec("random")

    def test_typed_params(self):
        spec = StrategySpec.parse("fair-random,seed=3,bias=0.75")
        assert spec.params == {"seed": 3, "bias": 0.75}

    @pytest.mark.parametrize("text", ["", "pct,depth", "pct,=3", ","])
    def test_malformed_rejected(self, text):
        with pytest.raises(PSharpError):
            StrategySpec.parse(text)


# ---------------------------------------------------------------------------
# Strategy reset(): the exactness the fallback restart relies on
# ---------------------------------------------------------------------------
class TestStrategyReset:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomStrategy(seed=11),
            lambda: FairRandomStrategy(seed=11),
            lambda: PctStrategy(seed=11, depth=5),
            lambda: DelayBoundingStrategy(seed=11, delays=3),
            lambda: DfsStrategy(),
            lambda: IterativeDeepeningDfsStrategy(initial_depth=4),
        ],
        ids=["random", "fair-random", "pct", "delay-bounding", "dfs", "iddfs"],
    )
    def test_reset_restores_initial_decision_sequence(self, factory):
        def fingerprints(strategy):
            report = drive(
                RacyCounter,
                None,
                strategy,
                max_iterations=25,
                time_limit=30.0,
                max_steps=500,
                stop_on_first_bug=False,
                workers="pool",
            )
            return [bug.trace.fingerprint() for bug in report.bugs], report.iterations

        strategy = factory()
        first = fingerprints(strategy)
        strategy.reset()
        again = fingerprints(strategy)
        fresh = fingerprints(factory())
        assert again == first == fresh

    def test_base_reset_refuses(self):
        from repro.testing.strategies import SchedulingStrategy

        with pytest.raises(NotImplementedError):
            SchedulingStrategy.reset(RandomStrategy(seed=1))


# ---------------------------------------------------------------------------
# workers="auto": resolution, fallback, bit-identity
# ---------------------------------------------------------------------------
class TestAutoBackend:
    def test_compiler_verdicts(self):
        assert LambdaRacer.inline_compatible() is False
        assert LambdaRacer.inline_compatible() is False  # memoized path
        assert "_inline_incompatible" in LambdaRacer.__dict__
        assert MidCampaignRacer.inline_compatible() is True
        assert LambdaEcho.inline_compatible() is False
        assert Echo.inline_compatible() is True

    def test_runtime_resolves_auto_per_main_class(self):
        strategy = RandomStrategy(seed=1)
        runtime = BugFindingRuntime(strategy, workers="auto")
        assert runtime.resolve_workers(Echo) == "inline"
        assert runtime.resolve_workers(LambdaRacer) == "pool"
        strategy.prepare_iteration()
        result = runtime.execute(LambdaRacer)
        assert runtime.effective_workers == "pool"
        assert result.status in ("ok", "bug")

    def test_registry_benchmark_runs_inline_under_auto(self):
        from repro.bench import buggy_main

        report = drive(
            buggy_main("BoundedAsync"),
            None,
            RandomStrategy(seed=7),
            max_iterations=20,
            time_limit=30.0,
            stop_on_first_bug=False,
        )
        assert report.effective_backend == "inline"
        assert report.iterations == 20

    def test_incompatible_main_falls_back_bit_identically(self):
        auto_report, auto_prints = _campaign_fingerprints(LambdaRacer, "auto")
        pool_report, pool_prints = _campaign_fingerprints(LambdaRacer, "pool")
        assert auto_report.effective_backend == "pool"
        assert pool_report.effective_backend == "pool"
        assert auto_report.iterations == pool_report.iterations
        assert auto_report.buggy_iterations == pool_report.buggy_iterations
        assert auto_report.total_scheduling_points == pool_report.total_scheduling_points
        assert auto_prints == pool_prints and auto_prints  # found some bugs

    def test_mid_campaign_failure_restarts_bit_identically(self):
        auto_report, auto_prints = _campaign_fingerprints(MidCampaignRacer, "auto")
        pool_report, pool_prints = _campaign_fingerprints(MidCampaignRacer, "pool")
        assert auto_report.effective_backend == "pool"
        assert auto_report.iterations == pool_report.iterations
        assert auto_report.total_steps == pool_report.total_steps
        assert auto_prints == pool_prints and auto_prints

    def test_explicit_inline_still_raises(self):
        from repro.core.continuations import InlineCompileError

        with pytest.raises(InlineCompileError):
            drive(
                MidCampaignRacer,
                None,
                RandomStrategy(seed=3),
                max_iterations=5,
                time_limit=30.0,
                workers="inline",
            )

    def test_replay_of_fallback_bug_reproduces(self):
        report, _ = _campaign_fingerprints(MidCampaignRacer, "auto")
        assert report.first_bug is not None
        result = replay(MidCampaignRacer, report.first_bug.trace)
        assert result.buggy
        assert result.trace.fingerprint() == report.first_bug.trace.fingerprint()

    def test_chess_runtime_collapses_auto_to_pool(self):
        from repro.chess import ChessRuntime

        runtime = ChessRuntime(RandomStrategy(seed=0), workers="auto")
        assert runtime.workers == "pool"
        assert runtime.resolve_workers(Ping) == "pool"


# ---------------------------------------------------------------------------
# Campaign facade
# ---------------------------------------------------------------------------
class TestCampaign:
    def _config(self, **overrides):
        base = dict(
            program=RacyCounter,
            seed=5,
            max_iterations=200,
            time_limit=30.0,
            max_steps=2_000,
        )
        base.update(overrides)
        return TestConfig(**base)

    def test_run_finds_bug_and_reports_backend(self):
        campaign = Campaign(self._config())
        report = campaign.run()
        assert report.bug_found
        assert report.effective_backend == "inline"
        assert campaign.last_report is report

    def test_replay_defaults_to_last_winner(self):
        campaign = Campaign(self._config())
        campaign.run()
        result = campaign.replay()
        assert result is not None and result.buggy

    def test_replay_without_bug_returns_none(self):
        campaign = Campaign(self._config(program=Ping))
        report = campaign.run()
        assert not report.bug_found
        assert campaign.replay() is None

    def test_replay_accepts_trace_file(self, tmp_path):
        campaign = Campaign(self._config())
        report = campaign.run()
        path = tmp_path / "bug.trace.json"
        report.first_bug.trace.save(path)
        result = campaign.replay(str(path))
        assert result.buggy
        result2 = campaign.replay(path)  # PathLike too
        assert result2.buggy

    def test_portfolio_runs_specs(self):
        campaign = Campaign(
            self._config(
                specs=("random,seed=5", "fair-random,seed=6"),
                stop_on_first_bug=False,
                max_iterations=50,
            )
        )
        report = campaign.portfolio()
        assert len(report.sub_reports) == 2
        assert report.iterations > 0
        assert report.effective_backend == "inline"

    def test_portfolio_workers_override(self):
        campaign = Campaign(self._config(max_iterations=30))
        report = campaign.portfolio(workers=2)
        assert len(report.sub_reports) == 2

    def test_portfolio_honors_record_traces_off(self):
        campaign = Campaign(
            self._config(
                specs=("random,seed=5",),
                record_traces=False,
                max_iterations=100,
            )
        )
        report = campaign.portfolio()
        assert report.bug_found
        assert report.first_bug.trace is None

    def test_campaign_requires_config(self):
        with pytest.raises(PSharpError):
            Campaign(RacyCounter)

    def test_live_strategy_override(self):
        strategy = RandomStrategy(seed=5)
        campaign = Campaign(self._config(), strategy=strategy)
        report = campaign.run()
        assert report.strategy == "random"
        assert report.bug_found


# ---------------------------------------------------------------------------
# The deprecated shims still speak the new vocabulary
# ---------------------------------------------------------------------------
class TestShims:
    def test_testing_engine_reports_effective_backend(self):
        engine = TestingEngine(
            RacyCounter,
            strategy=RandomStrategy(seed=5),
            max_iterations=200,
            time_limit=30.0,
        )
        report = engine.run()
        assert report.bug_found
        assert report.effective_backend == "inline"

    def test_portfolio_engine_defaults_to_auto(self):
        engine = PortfolioEngine(
            RacyCounter,
            specs=[StrategySpec("random", {"seed": 5})],
            max_iterations=100,
            time_limit=30.0,
        )
        assert engine.runtime_workers == "auto"
        report = engine.run()
        assert report.effective_backend == "inline"
        assert engine.replay_winner(report) is None or report.bug_found

    def test_report_merge_marks_mixed_backends(self):
        from repro.testing.engine import TestReport

        a = TestReport(strategy="a", effective_backend="inline")
        b = TestReport(strategy="b", effective_backend="pool")
        merged = TestReport.merged([a, b])
        assert merged.effective_backend == "mixed"
        assert merged.detached().effective_backend == "mixed"

    def test_report_merge_keeps_common_backend(self):
        from repro.testing.engine import TestReport

        a = TestReport(strategy="a", effective_backend="inline")
        b = TestReport(strategy="b", effective_backend="inline")
        c = TestReport(strategy="c")  # dead shard: no backend resolved
        assert TestReport.merged([a, b, c]).effective_backend == "inline"


# ---------------------------------------------------------------------------
# Satellites: machine_count, trace save/load
# ---------------------------------------------------------------------------
class TestMachineCount:
    def test_machine_count_tracks_registry(self):
        strategy = RandomStrategy(seed=1)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy)
        runtime.execute(Ping)
        assert runtime.machine_count == len(runtime._machines) == 2

    def test_report_max_machines_uses_it(self):
        report = drive(
            Ping, None, RandomStrategy(seed=1),
            max_iterations=5, time_limit=30.0, stop_on_first_bug=False,
        )
        assert report.max_machines == 2


class TestTraceSaveLoad:
    def test_round_trip(self, tmp_path):
        trace = ScheduleTrace(
            [("sched", 0), ("bool", 1), ("int", 3), ("monitor", 0)]
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ScheduleTrace.load(path)
        assert loaded == trace
        assert loaded.fingerprint() == trace.fingerprint()

    def test_engine_replay_accepts_path(self, tmp_path):
        report = drive(
            RacyCounter, None, RandomStrategy(seed=5),
            max_iterations=200, time_limit=30.0, max_steps=2_000,
        )
        assert report.first_bug is not None
        path = tmp_path / "bug.json"
        report.first_bug.trace.save(path)
        result = replay(RacyCounter, str(path))
        assert result.buggy


# ---------------------------------------------------------------------------
# Campaign JSON: the versioned TestConfig round-trip the fleet and
# `test --config` ship campaigns as (docs/cli.md "Campaign files").
# ---------------------------------------------------------------------------
class TestConfigJson:
    def _rich_config(self):
        from repro.bench.raft import ElectionSafetyMonitor
        from repro.testing.faults import FaultConfig

        return TestConfig(
            program="tests.machines:Ping",
            payload={"rounds": 3, "names": ["a", "b"]},
            specs=(
                StrategySpec("random", {"seed": 1}),
                StrategySpec("pct", {"depth": 10, "seed": 2}),
            ),
            seed=7,
            max_iterations=123,
            time_limit=45.5,
            stop_on_first_bug=False,
            monitors=(ElectionSafetyMonitor,),
            faults=FaultConfig(drop=0.1, crash=0.05, crash_classes=(Ping,)),
            iteration_timeout=2.5,
            coverage=True,
            events_path="/tmp/events.jsonl",
        )

    def test_round_trip_is_exact(self):
        config = self._rich_config()
        restored = TestConfig.from_json(config.to_json())
        assert restored == config

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        config = self._rich_config()
        config.save(path)
        assert TestConfig.load(path) == config

    def test_class_program_serializes_as_import_path(self):
        config = TestConfig(program=Ping, max_iterations=10)
        obj = config.to_json_obj()
        assert obj["program"] == "tests.machines:Ping"
        restored = TestConfig.from_json_obj(obj)
        assert restored.resolve_program()[0] is Ping

    def test_cli_style_strategy_strings_accepted(self):
        restored = TestConfig.from_json_obj(
            {
                "version": 1,
                "program": "BoundedAsync",
                "strategy": "pct,depth=10",
                "specs": ["random,seed=1", "dfs"],
            }
        )
        assert restored.strategy == StrategySpec("pct", {"depth": 10})
        assert restored.specs == (
            StrategySpec("random", {"seed": 1}),
            StrategySpec("dfs"),
        )

    def test_unknown_field_is_loud(self):
        with pytest.raises(PSharpError, match="unknown field.*'max_iteratons'"):
            TestConfig.from_json_obj(
                {"version": 1, "program": "Raft", "max_iteratons": 5}
            )

    def test_missing_version_is_loud(self):
        with pytest.raises(PSharpError, match="no 'version'"):
            TestConfig.from_json_obj({"program": "Raft"})

    def test_foreign_version_is_loud(self):
        with pytest.raises(PSharpError, match="version 99"):
            TestConfig.from_json_obj({"version": 99, "program": "Raft"})

    def test_unknown_fault_field_is_loud(self):
        with pytest.raises(PSharpError, match="'faults'.*'dorp'"):
            TestConfig.from_json_obj(
                {"version": 1, "program": "Raft", "faults": {"dorp": 0.1}}
            )

    def test_runtime_factory_refuses_to_serialize(self):
        config = TestConfig(program="Raft", runtime_factory=lambda *a, **k: None)
        with pytest.raises(PSharpError, match="runtime_factory"):
            config.to_json()

    def test_non_json_payload_refuses_to_serialize(self):
        config = TestConfig(program="Raft", payload={1, 2, 3})
        with pytest.raises(PSharpError, match="payload"):
            config.to_json()

    def test_local_class_refuses_to_serialize(self):
        class Local(Machine):
            class Init(State):
                initial = True

        config = TestConfig(program=Local)
        with pytest.raises(PSharpError, match="not importable"):
            config.to_json()

    def test_unimportable_monitor_is_loud(self):
        with pytest.raises(PSharpError, match="cannot import monitor"):
            TestConfig.from_json_obj(
                {"version": 1, "program": "Raft", "monitors": ["nope.not:There"]}
            )

    def test_corrupt_file_is_loud(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PSharpError, match="does not parse"):
            TestConfig.load(path)

    def test_wrong_scalar_type_is_loud(self):
        with pytest.raises(PSharpError):
            TestConfig.from_json_obj(
                {"version": 1, "program": "Raft", "max_iterations": "ten"}
            )
