"""Campaign self-robustness: the tester must survive its own failures.

A campaign that hunts crash bugs in distributed protocols cannot itself
fall over when a worker process dies.  These tests kill workers with
SIGKILL mid-campaign, wedge executions past the watchdog, interrupt the
CLI with SIGINT, and hand the resume path corrupt checkpoints — and
assert the campaign still produces a complete (or honestly partial)
merged report, leaks no child processes, and never re-runs work a
checkpoint already persisted.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import PSharpError, StrategySpec, TestConfig
from repro.testing.checkpoint import (
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.testing.config import Campaign
from repro.testing.portfolio import run_portfolio

from .machines import Ping, SelfLoop

ROOT = Path(__file__).resolve().parents[1]

TWO_SHARDS = (
    StrategySpec("random", {"seed": 1}),
    StrategySpec("random", {"seed": 2}),
)


def _drain_children(timeout=5.0):
    """Wait for any straggler child processes; return the survivors."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return multiprocessing.active_children()


class TestWorkerCrashResilience:
    def test_sigkilled_worker_is_respawned_and_report_completes(self):
        # A no-bug target with an iteration budget far beyond the time
        # limit, so both workers are guaranteed to still be running when
        # the killer thread strikes.
        config = TestConfig(
            program=Ping,
            specs=TWO_SHARDS,
            max_iterations=10_000_000,
            time_limit=4.0,
            max_steps=2_000,
        )
        killed = []

        def kill_one_worker():
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                children = multiprocessing.active_children()
                if children:
                    time.sleep(0.3)  # let it get some real work done
                    victim = multiprocessing.active_children()
                    if victim:
                        os.kill(victim[0].pid, signal.SIGKILL)
                        killed.append(victim[0].pid)
                    return
                time.sleep(0.02)

        killer = threading.Thread(target=kill_one_worker)
        killer.start()
        try:
            report = run_portfolio(config)
        finally:
            killer.join()

        assert killed, "killer thread never saw a worker process"
        # The merged report still covers every shard: the murdered
        # worker was respawned and its replacement reported.
        assert len(report.sub_reports) == len(TWO_SHARDS)
        for sub in report.sub_reports:
            assert sub.iterations > 0, sub
        assert not report.bug_found
        # Satellite guarantee: no child processes leak past the campaign.
        assert _drain_children() == []

    def test_clean_portfolio_leaks_no_children(self):
        config = TestConfig(
            program=Ping,
            specs=TWO_SHARDS,
            max_iterations=100,
            time_limit=30.0,
            max_steps=2_000,
        )
        report = run_portfolio(config)
        assert len(report.sub_reports) == len(TWO_SHARDS)
        assert _drain_children() == []


class TestIterationWatchdog:
    def test_wedged_iterations_are_canceled_and_counted(self):
        # SelfLoop never quiesces; with an effectively unbounded depth
        # bound only the wall-clock watchdog can end an iteration.
        config = TestConfig(
            program=SelfLoop,
            strategy="random,seed=0",
            max_iterations=2,
            max_steps=10_000_000,
            iteration_timeout=0.3,
            time_limit=60.0,
        )
        report = Campaign(config).run()
        assert report.watchdog_hits == 2
        assert report.iterations == 2
        assert not report.bug_found


class TestCheckpointResume:
    def _config(self):
        return TestConfig(
            program=Ping,
            specs=TWO_SHARDS,
            max_iterations=100,
            time_limit=30.0,
            max_steps=2_000,
        )

    def test_completed_campaign_writes_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        report = Campaign(self._config()).portfolio(checkpoint=path)
        assert len(report.sub_reports) == len(TWO_SHARDS)
        state = load_checkpoint(path)
        assert sorted(state["completed"]) == [0, 1]
        assert state["fingerprint"] == config_fingerprint(self._config())

    def test_resume_skips_completed_shards(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        config = self._config()
        Campaign(config).portfolio(checkpoint=path)

        # Rewrite the checkpoint as if the campaign had been killed
        # after shard 0: plant a sentinel iteration count there (a
        # re-run could never produce it) and drop shard 1.
        state = load_checkpoint(path)
        state["completed"][0].iterations = 123_456
        del state["completed"][1]
        save_checkpoint(
            path,
            fingerprint=state["fingerprint"],
            specs=state["specs"],
            completed=state["completed"],
        )

        report = run_portfolio(config, resume=path)
        assert len(report.sub_reports) == len(TWO_SHARDS)
        # Shard 0 came straight from the checkpoint, untouched.
        assert report.sub_reports[0].iterations == 123_456
        # Shard 1 was actually (re-)run.
        assert 0 < report.sub_reports[1].iterations <= 100
        assert report.iterations == 123_456 + report.sub_reports[1].iterations
        # And the re-run shard was checkpointed on completion.
        assert sorted(load_checkpoint(path)["completed"]) == [0, 1]

    def test_fully_resumed_campaign_runs_nothing(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        config = self._config()
        first = Campaign(config).portfolio(checkpoint=path)
        before = multiprocessing.active_children()
        resumed = run_portfolio(config, resume=path)
        assert resumed.iterations == first.iterations
        assert len(resumed.sub_reports) == len(TWO_SHARDS)
        assert multiprocessing.active_children() == before

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(PSharpError, match="cannot read checkpoint"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_corrupt_checkpoint_raises(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PSharpError, match="corrupt checkpoint"):
            load_checkpoint(path)
        truncated = tmp_path / "truncated.ckpt"
        good = tmp_path / "good.ckpt"
        save_checkpoint(
            good,
            fingerprint="f",
            specs=list(TWO_SHARDS),
            completed={},
        )
        truncated.write_bytes(good.read_bytes()[:-7])
        with pytest.raises(PSharpError, match="corrupt checkpoint"):
            load_checkpoint(truncated)

    def test_resume_rejects_checkpoint_from_other_campaign(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        Campaign(self._config()).portfolio(checkpoint=path)
        other = self._config().with_overrides(max_iterations=999)
        with pytest.raises(PSharpError, match="different campaign"):
            run_portfolio(other, resume=path)


def run_cli_process(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=ROOT,
    )


class TestGracefulInterrupt:
    def test_sigint_flushes_checkpoint_and_exits_130(self, tmp_path):
        ckpt = tmp_path / "interrupted.ckpt"
        proc = run_cli_process(
            "test", "tests.machines:Ping",
            "--portfolio", "2",
            "--max-iterations", "10000000",
            "--time-limit", "60",
            "--checkpoint", str(ckpt),
        )
        try:
            time.sleep(2.5)  # let the campaign spin up its workers
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stdout + stderr
        assert "campaign interrupted (partial results)" in stdout
        # The final flush persisted a (possibly empty) resumable state.
        state = load_checkpoint(ckpt)
        assert state["fingerprint"]

    def test_corrupt_resume_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"garbage")
        proc = run_cli_process(
            "test", "tests.machines:Ping", "--resume", str(bad),
        )
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 2, stdout + stderr
        assert "corrupt checkpoint" in stderr
