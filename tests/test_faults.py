"""Deterministic fault injection: config, recording, replay, fault-only bugs.

The invariants under test:

* a ``FaultConfig`` validates its probabilities and budget;
* every injected fault is a strategy decision recorded in the schedule
  trace, so faulty executions are bit-identical across the inline, pool
  and spawn back-ends and replay exactly;
* the fault-enabled registry variants (``RaftLossy``,
  ``TwoPhaseCommitCrash``) expose bugs that are reachable *only* with
  faults enabled;
* crash-restart respects ``persistent_fields`` vs volatile state;
* corrupt trace files surface as :class:`PSharpError`, not raw
  ``json``/``KeyError`` tracebacks.
"""

import json

import pytest

from repro import FaultConfig, PSharpError, ScheduleTrace
from repro.bench.registry import resolve_target
from repro.testing.config import Campaign, TestConfig
from repro.testing.faults import (
    FAULT_CRASH,
    FAULT_NONE,
    outcome_name,
)
from repro.testing.runtime import BugFindingRuntime
from repro.testing.strategies import (
    DfsStrategy,
    RandomStrategy,
    ReplayStrategy,
)
from repro.testing.trace import FAULT

from .machines import CrashCounter, CrashDriver, Ping

BACKENDS = ("inline", "pool", "spawn")
FAULT_TARGETS = ("RaftLossy", "TwoPhaseCommitCrash")


def fault_outcomes(trace):
    return [value for kind, value in trace.decisions if kind == FAULT]


class TestFaultConfig:
    def test_defaults_disabled(self):
        config = FaultConfig()
        assert not config.enabled
        assert config.message_weights == (0, 0, 0)
        assert config.crash_weight == 0

    @pytest.mark.parametrize("field", ["drop", "duplicate", "delay", "crash"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probability_range_validated(self, field, bad):
        with pytest.raises(ValueError):
            FaultConfig(**{field: bad})

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(max_faults=-1)

    def test_zero_budget_disables(self):
        assert not FaultConfig(drop=0.5, max_faults=0).enabled

    def test_crash_classes_normalized(self):
        config = FaultConfig(crash=0.1, crash_classes=[CrashCounter])
        assert config.crash_classes == (CrashCounter,)
        with pytest.raises(ValueError):
            FaultConfig(crash_classes=("not a class",))

    def test_outcome_names(self):
        assert outcome_name(FAULT_NONE) == "none"
        assert outcome_name(FAULT_CRASH) == "crash"

    def test_config_faults_validated(self):
        with pytest.raises(PSharpError):
            TestConfig(program=Ping, faults="drop everything")
        with pytest.raises(PSharpError):
            TestConfig(program=Ping, iteration_timeout=0)

    def test_resolved_faults_prefers_explicit(self):
        # Explicit all-zero config disables a fault-enabled variant.
        config = TestConfig(program="RaftLossy", faults=FaultConfig())
        assert config.resolved_faults() == FaultConfig()
        # None defers to the registry variant's default.
        assert TestConfig(program="RaftLossy").resolved_faults().drop > 0
        # Non-registry targets have no default.
        assert TestConfig(program=Ping).resolved_faults() is None


class TestStrategyFaultDecisions:
    def test_pick_fault_zero_weight_never_consumes(self):
        strategy = RandomStrategy(seed=1)
        strategy.prepare_iteration()
        assert strategy.pick_fault(0) is False

    def test_dfs_explores_fault_free_first(self):
        strategy = DfsStrategy()
        strategy.prepare_iteration()
        assert strategy.pick_fault(500) is False

    def test_replay_refires_recorded_outcomes_only(self):
        faults = FaultConfig(drop=0.6, max_faults=4)
        runtime = BugFindingRuntime(
            RandomStrategy(seed=5), max_steps=2000, faults=faults
        )
        result = runtime.execute(Ping)
        recorded = fault_outcomes(result.trace)
        assert recorded, "expected fault consultations to be recorded"
        replayer = ReplayStrategy(result.trace)
        replay_rt = BugFindingRuntime(replayer, max_steps=2000, faults=faults)
        replayed = replay_rt.execute(Ping)
        assert fault_outcomes(replayed.trace) == recorded
        # And the replay strategy itself never invents faults.
        assert replayer.pick_fault(1000) is False


class TestRecordingDeterminism:
    @pytest.mark.parametrize("target", FAULT_TARGETS)
    def test_backends_record_identical_faulty_traces(self, target):
        variant = resolve_target(target)
        fingerprints = set()
        for backend in BACKENDS:
            runtime = BugFindingRuntime(
                RandomStrategy(seed=7),
                max_steps=5000,
                monitors=variant.monitors,
                faults=variant.faults,
                workers=backend,
            )
            result = runtime.execute(variant.main, variant.payload)
            fingerprints.add((result.trace.fingerprint(), result.status))
        assert len(fingerprints) == 1

    @pytest.mark.parametrize("target", FAULT_TARGETS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_faulty_trace_replays_bit_identically(self, target, backend):
        variant = resolve_target(target)
        runtime = BugFindingRuntime(
            RandomStrategy(seed=7),
            max_steps=5000,
            monitors=variant.monitors,
            faults=variant.faults,
            workers="inline",
        )
        recorded = runtime.execute(variant.main, variant.payload)
        replay_rt = BugFindingRuntime(
            ReplayStrategy(recorded.trace),
            max_steps=5000,
            monitors=variant.monitors,
            faults=variant.faults,
            workers=backend,
        )
        replayed = replay_rt.execute(variant.main, variant.payload)
        assert replayed.trace.fingerprint() == recorded.trace.fingerprint()
        assert replayed.status == recorded.status

    def test_disabled_faults_record_nothing(self):
        runtime = BugFindingRuntime(
            RandomStrategy(seed=3),
            max_steps=2000,
            faults=FaultConfig(drop=0.9, max_faults=0),
        )
        result = runtime.execute(Ping)
        assert fault_outcomes(result.trace) == []

    def test_budget_caps_injections(self):
        faults = FaultConfig(drop=1.0, max_faults=2)
        runtime = BugFindingRuntime(
            RandomStrategy(seed=0), max_steps=2000, faults=faults
        )
        result = runtime.execute(Ping)
        injected = [v for v in fault_outcomes(result.trace) if v != FAULT_NONE]
        assert len(injected) <= 2


class TestFaultOnlyBugs:
    def test_raft_lossy_liveness_bug_needs_drops(self):
        config = TestConfig(
            program="RaftLossy",
            strategy="random,seed=3",
            max_iterations=200,
            time_limit=60,
        )
        report = Campaign(config).run()
        assert report.bug_found
        assert report.first_bug.kind == "liveness"
        clean = Campaign(
            config.with_overrides(faults=FaultConfig(), max_iterations=300)
        ).run()
        assert not clean.bug_found, str(clean.first_bug)

    def test_two_phase_commit_bug_needs_crashes(self):
        config = TestConfig(
            program="TwoPhaseCommitCrash",
            strategy="random,seed=5",
            max_iterations=500,
            time_limit=60,
        )
        report = Campaign(config).run()
        assert report.bug_found
        clean = Campaign(
            config.with_overrides(faults=FaultConfig(), max_iterations=300)
        ).run()
        assert not clean.bug_found, str(clean.first_bug)

    def test_presumed_abort_recovery_is_correct_under_crashes(self):
        variant = resolve_target("TwoPhaseCommitCrash")
        config = TestConfig(
            program="repro.bench.fault_variants:RecoverableCoordinator",
            monitors=variant.monitors,
            faults=variant.faults,
            strategy="random,seed=9",
            max_iterations=400,
            time_limit=60,
        )
        report = Campaign(config).run()
        assert not report.bug_found, str(report.first_bug)

    def test_fault_bug_replays_via_campaign(self):
        config = TestConfig(
            program="TwoPhaseCommitCrash",
            strategy="random,seed=5",
            max_iterations=500,
            time_limit=60,
        )
        campaign = Campaign(config)
        report = campaign.run()
        assert report.bug_found
        result = campaign.replay()
        assert result is not None and result.buggy


class TestCrashRestartSemantics:
    def _run(self, seed, persistent):
        faults = FaultConfig(
            crash=0.5,
            max_faults=1,
            persistent_state=persistent,
            crash_classes=(CrashCounter,),
        )
        runtime = BugFindingRuntime(
            RandomStrategy(seed=seed), max_steps=2000, faults=faults
        )
        result = runtime.execute(CrashDriver)
        counter = next(
            m for m in runtime.machines if isinstance(m, CrashCounter)
        )
        crashed = FAULT_CRASH in fault_outcomes(result.trace)
        return counter, crashed

    def test_persistent_fields_survive_crash(self):
        for seed in range(20):
            counter, crashed = self._run(seed, persistent=True)
            if crashed and counter.persisted > counter.volatile:
                # The durable counter kept pre-crash bumps; the volatile
                # one restarted from zero.
                assert counter.persisted == CrashDriver.bumps
                return
        pytest.fail("no schedule crashed the counter mid-count in 20 seeds")

    def test_volatile_state_resets_on_crash(self):
        for seed in range(20):
            counter, crashed = self._run(seed, persistent=False)
            assert counter.persisted == counter.volatile
            if crashed and counter.volatile < CrashDriver.bumps:
                return
        pytest.fail("no schedule crashed the counter mid-count in 20 seeds")


class TestChessRejectsFaults:
    def test_chess_runtime_refuses_fault_injection(self):
        from repro.chess import ChessRuntime

        with pytest.raises(ValueError, match="fault"):
            ChessRuntime(RandomStrategy(seed=0), faults=FaultConfig(drop=0.1))


class TestCorruptTraces:
    def test_unreadable_file_raises_psharp_error(self, tmp_path):
        with pytest.raises(PSharpError, match="cannot read"):
            ScheduleTrace.load(tmp_path / "missing.trace")

    @pytest.mark.parametrize(
        "content",
        [
            "[not json",
            json.dumps(42),
            json.dumps([["bogus-kind", 1]]),
            json.dumps([["sched"]]),
            json.dumps([["sched", "not-an-int"]]),
        ],
    )
    def test_corrupt_content_raises_psharp_error(self, tmp_path, content):
        path = tmp_path / "bad.trace"
        path.write_text(content)
        with pytest.raises(PSharpError, match="corrupt schedule trace"):
            ScheduleTrace.load(path)
