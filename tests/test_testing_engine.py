"""Tests for the bug-finding runtime, strategies, engine and replay."""

import pytest

from repro import (
    BugFindingRuntime,
    DelayBoundingStrategy,
    DfsStrategy,
    PctStrategy,
    RandomStrategy,
    ReplayStrategy,
    TestingEngine,
    replay,
)

from .machines import NondetBug, Ping, RacyCounter, SelfLoop


class TestDfsStrategy:
    def test_enumerates_binary_tree(self):
        # Simulate two boolean decisions per iteration: 4 leaves total.
        dfs = DfsStrategy()
        seen = []
        while dfs.prepare_iteration():
            seen.append((dfs.pick_bool(), dfs.pick_bool()))
        assert seen == [
            (False, False),
            (False, True),
            (True, False),
            (True, True),
        ]

    def test_enumerates_mixed_arity(self):
        dfs = DfsStrategy()
        seen = []
        while dfs.prepare_iteration():
            seen.append((dfs.pick_int(3), dfs.pick_bool()))
        assert len(seen) == 6
        assert len(set(seen)) == 6

    def test_finds_nondet_bug_systematically(self):
        engine = TestingEngine(
            NondetBug, strategy=DfsStrategy(), max_iterations=100
        )
        report = engine.run()
        assert report.bug_found
        # (F,F), (F,T), (T,F) explored first; (T,T) is the 4th schedule.
        assert report.first_bug_iteration == 3

    def test_exhausts_small_space(self):
        engine = TestingEngine(
            Ping, strategy=DfsStrategy(), max_iterations=10_000, time_limit=60
        )
        report = engine.run()
        assert not report.bug_found
        # Ping/Pong has a finite schedule space; DFS must exhaust it.
        assert report.exhausted


class TestRandomStrategy:
    def test_finds_ordering_bug(self):
        engine = TestingEngine(
            RacyCounter,
            strategy=RandomStrategy(seed=1),
            max_iterations=200,
            stop_on_first_bug=True,
        )
        report = engine.run()
        assert report.bug_found
        assert report.first_bug.kind == "assertion-failure"

    def test_percent_buggy_estimation(self):
        engine = TestingEngine(
            RacyCounter,
            strategy=RandomStrategy(seed=1),
            max_iterations=100,
            stop_on_first_bug=False,
        )
        report = engine.run()
        assert report.iterations == 100
        # The out-of-order delivery happens in a sizable fraction of
        # schedules but not all of them.
        assert 0 < report.buggy_iterations < 100

    def test_seeded_runs_are_reproducible(self):
        def run():
            engine = TestingEngine(
                RacyCounter,
                strategy=RandomStrategy(seed=42),
                max_iterations=50,
                stop_on_first_bug=False,
            )
            return engine.run()

        a, b = run(), run()
        assert a.buggy_iterations == b.buggy_iterations
        assert a.total_scheduling_points == b.total_scheduling_points


class TestReplay:
    def test_replaying_buggy_trace_reproduces_bug(self):
        engine = TestingEngine(
            RacyCounter, strategy=RandomStrategy(seed=3), max_iterations=500
        )
        report = engine.run()
        assert report.bug_found
        trace = report.first_bug.trace
        assert trace is not None and len(trace) > 0

        result = replay(RacyCounter, trace)
        assert result.buggy
        assert result.bug.kind == "assertion-failure"
        assert report.first_bug.message == result.bug.message

    def test_replaying_ok_trace_is_ok(self):
        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy)
        result = runtime.execute(Ping)
        assert result.status == "ok"

        replayed = replay(Ping, result.trace)
        assert replayed.status == "ok"
        assert replayed.steps == result.steps

    def test_trace_round_trips_through_json(self):
        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy)
        result = runtime.execute(Ping)
        from repro import ScheduleTrace

        restored = ScheduleTrace.from_json(result.trace.to_json())
        assert restored.decisions == result.trace.decisions


class TestDepthBound:
    def test_livelock_hits_depth_bound(self):
        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy, max_steps=200)
        result = runtime.execute(SelfLoop)
        assert result.status == "depth-bound"

    def test_livelock_reported_as_bug_when_requested(self):
        # Section 7.2.2: "we then imposed a depth-bound to automatically
        # detect the livelock and ensure termination".
        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy, max_steps=200, livelock_as_bug=True)
        result = runtime.execute(SelfLoop)
        assert result.buggy
        assert result.bug.kind == "liveness"


class TestOtherStrategies:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: PctStrategy(seed=5, depth=3),
            lambda: DelayBoundingStrategy(seed=5, delays=2),
        ],
        ids=["pct", "delay-bounding"],
    )
    def test_extension_strategies_find_ordering_bug(self, strategy_factory):
        engine = TestingEngine(
            RacyCounter,
            strategy=strategy_factory(),
            max_iterations=500,
            stop_on_first_bug=True,
        )
        report = engine.run()
        assert report.bug_found

    def test_replay_strategy_runs_once(self):
        from repro import ScheduleTrace

        strategy = ReplayStrategy(ScheduleTrace([("sched", 0)]))
        assert strategy.prepare_iteration()
        assert not strategy.prepare_iteration()


class TestReportStatistics:
    def test_max_machines_reflects_spawned_machines(self):
        # Regression: the engine used to record the per-iteration machine
        # count but never fold it into the report, so Table 2's #T column
        # was always 0.
        engine = TestingEngine(
            Ping, strategy=RandomStrategy(seed=0), max_iterations=5,
            stop_on_first_bug=False, time_limit=30,
        )
        report = engine.run()
        assert report.max_machines == 2  # Ping + Pong

        engine = TestingEngine(
            RacyCounter, strategy=RandomStrategy(seed=0), max_iterations=5,
            stop_on_first_bug=False, time_limit=30,
        )
        assert engine.run().max_machines == 3  # parent + two incrementers


class TestTimeLimit:
    def test_time_limit_cuts_off_mid_iteration(self):
        # Regression: the time limit used to be checked only between
        # iterations, so one long (here: infinite up to max_steps) schedule
        # could overshoot the budget arbitrarily.  With an effectively
        # unbounded step budget the engine must still return promptly.
        engine = TestingEngine(
            SelfLoop,
            strategy=RandomStrategy(seed=0),
            max_iterations=10,
            time_limit=0.3,
            max_steps=10**9,
        )
        report = engine.run()
        assert report.elapsed < 10.0
        assert report.timed_out
        # The cut-off partial schedule is not counted as an explored one...
        assert report.iterations == 0
        # ...but the work it did is still visible in the step counters.
        assert report.total_steps > 0

    def test_runtime_reports_time_bound_status(self):
        import time as time_module

        from repro.testing.runtime import BugFindingRuntime as Runtime

        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = Runtime(
            strategy, max_steps=10**9,
            deadline=time_module.monotonic() + 0.1,
        )
        result = runtime.execute(SelfLoop)
        assert result.status == "time-bound"

    def test_runtime_stop_check_aborts_execution(self):
        from repro.testing.runtime import BugFindingRuntime as Runtime

        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = Runtime(strategy, max_steps=10**9, stop_check=lambda: True)
        result = runtime.execute(SelfLoop)
        assert result.status == "stopped"


class TestSchedulingPointCounts:
    def test_scheduling_points_counted(self):
        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy)
        result = runtime.execute(Ping)
        # Ping creates 1 machine and the pair exchanges 3 pings + 3 pongs
        # + start + halt: each send/create is a scheduling point.
        assert result.scheduling_points >= 8
