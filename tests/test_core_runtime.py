"""Unit tests for the core machine model and the production runtime."""

import pytest

from repro import (
    Event,
    Halt,
    Machine,
    MachineDeclarationError,
    MachineId,
    Runtime,
    State,
    machine_statistics,
    program_statistics,
)
from repro.testing import BugFindingRuntime, RandomStrategy

from .machines import EPing, EStart, Ping, Pong


class EA(Event):
    pass


class EB(Event):
    pass


def run_once(main_cls, payload=None, seed=0):
    strategy = RandomStrategy(seed=seed)
    strategy.prepare_iteration()
    runtime = BugFindingRuntime(strategy)
    result = runtime.execute(main_cls, payload)
    return runtime, result


class TestDeclarations:
    def test_states_collected(self):
        assert set(Ping._state_infos) == {"Init", "Playing"}
        assert Ping._initial_state == "Init"

    def test_missing_initial_state_rejected(self):
        with pytest.raises(MachineDeclarationError, match="initial"):

            class NoInitial(Machine):
                class S(State):
                    pass

    def test_two_initial_states_rejected(self):
        with pytest.raises(MachineDeclarationError, match="initial"):

            class TwoInitials(Machine):
                class S1(State):
                    initial = True

                class S2(State):
                    initial = True

    def test_event_handled_twice_rejected(self):
        # Paper error class (i): one event, two handlers in one state.
        with pytest.raises(MachineDeclarationError, match="both"):

            class Conflicting(Machine):
                class S(State):
                    initial = True
                    transitions = {EA: "S"}
                    actions = {EA: "noop"}

                def noop(self):
                    pass

    def test_unknown_transition_target_rejected(self):
        with pytest.raises(MachineDeclarationError, match="unknown state"):

            class BadTarget(Machine):
                class S(State):
                    initial = True
                    transitions = {EA: "Nowhere"}

    def test_missing_action_rejected(self):
        with pytest.raises(MachineDeclarationError, match="missing action"):

            class BadAction(Machine):
                class S(State):
                    initial = True
                    actions = {EA: "does_not_exist"}

    def test_missing_entry_rejected(self):
        with pytest.raises(MachineDeclarationError, match="missing"):

            class BadEntry(Machine):
                class S(State):
                    initial = True
                    entry = "does_not_exist"

    def test_state_inheritance_between_machines(self):
        class Base(Machine):
            class Init(State):
                initial = True
                actions = {EA: "handle"}

            def handle(self):
                pass

        class Derived(Base):
            class Extra(State):
                actions = {EB: "handle"}

        assert set(Derived._state_infos) == {"Init", "Extra"}
        assert Derived._initial_state == "Init"

    def test_state_override_in_subclass(self):
        class Base(Machine):
            class Init(State):
                initial = True
                actions = {EA: "handle"}

            def handle(self):
                pass

        class Derived(Base):
            class Init(State):
                initial = True
                actions = {EB: "handle"}

        assert EB in Derived._state_infos["Init"].actions
        assert EA not in Derived._state_infos["Init"].actions


class TestStatistics:
    def test_machine_statistics(self):
        stats = machine_statistics(Ping)
        assert stats["states"] == 2
        assert stats["transitions"] == 1  # EStart -> Playing
        assert stats["action_bindings"] == 1  # EPong

    def test_program_statistics(self):
        stats = program_statistics([Ping, Pong])
        assert stats["machines"] == 2
        assert stats["transitions"] == 1
        assert stats["action_bindings"] == 2


class TestMachineIds:
    def test_ids_ordered_and_hashable(self):
        a, b = MachineId(0, "A"), MachineId(1, "B")
        assert a < b
        assert len({a, b, MachineId(0, "A")}) == 2


class TestEventDelivery:
    def test_ping_pong_completes(self):
        runtime, result = run_once(Ping)
        assert result.status == "ok"
        assert not result.buggy
        ping = runtime.machines[0]
        pong = runtime.machines[1]
        assert ping.count == 3
        assert pong.pings == 3
        assert ping.is_halted and pong.is_halted

    def test_send_to_halted_machine_dropped(self):
        class Sender(Machine):
            class Init(State):
                initial = True
                entry = "go"

            def go(self):
                target = self.create_machine(Pong)
                self.send(target, Halt())
                self.send(target, EPing(self.id))  # dropped, no error
                self.halt()

        _, result = run_once(Sender)
        assert result.status == "ok"

    def test_deferred_event_stays_queued(self):
        log = []

        class Deferrer(Machine):
            class First(State):
                initial = True
                entry = "seed"
                deferred = (EA,)
                transitions = {EB: "Second"}

            class Second(State):
                entry = "arrived"
                actions = {EA: "on_a"}

            def seed(self):
                self.send(self.id, EA("deferred-payload"))
                self.send(self.id, EB())

            def arrived(self):
                log.append("second")

            def on_a(self):
                log.append(("a", self.payload))
                self.halt()

        _, result = run_once(Deferrer)
        assert result.status == "ok"
        assert log == ["second", ("a", "deferred-payload")]

    def test_ignored_event_dropped(self):
        log = []

        class Ignorer(Machine):
            class Init(State):
                initial = True
                entry = "seed"
                ignored = (EA,)
                actions = {EB: "on_b"}

            def seed(self):
                self.send(self.id, EA())
                self.send(self.id, EB())

            def on_b(self):
                log.append("b")
                self.halt()

        _, result = run_once(Ignorer)
        assert result.status == "ok"
        assert log == ["b"]

    def test_unhandled_event_is_bug(self):
        class Oops(Machine):
            class Init(State):
                initial = True
                entry = "seed"

            def seed(self):
                self.send(self.id, EA())

        _, result = run_once(Oops)
        assert result.buggy
        assert result.bug.kind == "unhandled-event"

    def test_raised_event_handled_before_queue(self):
        order = []

        class Raiser(Machine):
            class Init(State):
                initial = True
                entry = "seed"
                actions = {EA: "on_a", EB: "on_b"}

            def seed(self):
                self.send(self.id, EA())
                self.raise_event(EB())

            def on_a(self):
                order.append("a")
                self.halt()

            def on_b(self):
                order.append("b")

        _, result = run_once(Raiser)
        assert result.status == "ok"
        assert order == ["b", "a"]

    def test_exit_handler_runs_on_transition(self):
        log = []

        class WithExit(Machine):
            class First(State):
                initial = True
                entry = "seed"
                exit = "leaving"
                transitions = {EA: "Second"}

            class Second(State):
                entry = "arrived"

            def seed(self):
                self.send(self.id, EA())

            def leaving(self):
                log.append("exit-first")

            def arrived(self):
                log.append("enter-second")
                self.halt()

        _, result = run_once(WithExit)
        assert result.status == "ok"
        assert log == ["exit-first", "enter-second"]

    def test_payload_visible_in_entry(self):
        seen = {}

        class Receiver(Machine):
            class Init(State):
                initial = True
                entry = "record"

            def record(self):
                seen["payload"] = self.payload
                self.halt()

        _, result = run_once(Receiver, payload=42)
        assert result.status == "ok"
        assert seen["payload"] == 42

    def test_action_exception_is_bug(self):
        class Exploder(Machine):
            class Init(State):
                initial = True
                entry = "boom"

            def boom(self):
                raise ValueError("kaboom")

        _, result = run_once(Exploder)
        assert result.buggy
        assert result.bug.kind == "action-exception"
        assert "kaboom" in result.bug.message


class TestProductionRuntime:
    def test_ping_pong_on_real_threads(self):
        runtime = Runtime(seed=7)
        runtime.run(Ping)
        runtime.wait_quiescence(timeout=10.0)
        runtime.stop()
        assert runtime._error is None
        ping = runtime.machines[0]
        assert ping.count == 3

    def test_join_reraises_errors(self):
        class Exploder(Machine):
            class Init(State):
                initial = True
                entry = "boom"

            def boom(self):
                raise ValueError("production kaboom")

        runtime = Runtime()
        runtime.run(Exploder)
        with pytest.raises(Exception, match="production kaboom"):
            runtime.join(timeout=10.0)
