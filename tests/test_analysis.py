"""Tests for the static data race analysis using the paper's examples.

Example 4.2 / 5.4: the racy ``list_manager.get`` must be flagged
(condition 1: the list stays reachable through ``this``).
Example 5.3: no parameters given up in the base examples; a forwarding
``add`` gives up its payload.
Example 5.5: the repaired manager is a false positive *without* xSA and
verified *with* xSA.
"""

import pytest

from repro.analysis import (
    OwnershipAnalysis,
    TaintEngine,
    analyze_program,
    build_driver,
)
from repro.lang import parse_program

from .lang_programs import ELEM_CLASS, LIST_MANAGER, LIST_MANAGER_FIXED


def _info(taint, cls, method):
    return taint.methods[(cls, method)]


class TestTaintSummaries:
    def test_example_5_2_getters_and_setters(self):
        program = parse_program(LIST_MANAGER)
        taint = TaintEngine(program)
        # get_val / set_val move only scalars: no reference flows besides
        # the identity on `this`.
        get_val = taint.summaries[("elem", "get_val")]
        assert get_val.flow("this") == {"this"}
        # get_next: tainted(ret, Exit)(Entry) = {this}  (Example 5.2)
        get_next = taint.summaries[("elem", "get_next")]
        assert "$ret" in get_next.flow("this")
        # set_next stores its argument into `this`.
        set_next = taint.summaries[("elem", "set_next")]
        assert "this" in set_next.flow("n")

    def test_example_5_2_ret_overwritten_not_tainted(self):
        # "(ret is not included in the set, as its value is overwritten
        # in the second line of the method)" — the backward query from
        # the returned value must reach `this` but not stale `ret`.
        program = parse_program(LIST_MANAGER)
        taint = TaintEngine(program)
        info = _info(taint, "elem", "get_next")
        exit_node = info.cfg.exit
        ret_node = next(
            n for n in info.cfg.statement_nodes() if "return" in str(n.stmt)
        )
        facts = taint.closure_facts(info, "ret", ret_node)
        entry_taints = facts.out_of(info.cfg.entry)
        assert "this" in entry_taints

    def test_mutation_summaries(self):
        program = parse_program(LIST_MANAGER)
        taint = TaintEngine(program)
        set_next = taint.summaries[("elem", "set_next")]
        assert "this" in set_next.mutates
        get_next = taint.summaries[("elem", "get_next")]
        assert "this" not in get_next.mutates


class TestGivesUp:
    def test_example_5_3_no_giveups_in_base_methods(self):
        program = parse_program(LIST_MANAGER)
        ownership = OwnershipAnalysis(program)
        # "For the methods in Examples 4.1 and 4.2, no formal parameters
        # are given up."
        assert ownership.gives_up[("elem", "set_next")] == frozenset()
        assert "payload" not in ownership.gives_up[("list_manager", "add")]

    def test_example_5_3_forwarding_add_gives_up_payload(self):
        # "if we would let the add method forward payload instead of
        # adding it to the list ... then add would give up payload."
        forwarding = ELEM_CLASS + """
        machine forwarder {
            machine dst;
            void init() { }
            void add(elem payload) {
                machine d;
                d := this.dst;
                send d eAdd(payload);
            }
            transitions { init: eAdd -> add; add: eAdd -> add; }
        }
        """
        program = parse_program(forwarding)
        ownership = OwnershipAnalysis(program)
        assert "payload" in ownership.gives_up[("forwarder", "add")]

    def test_giveup_propagates_through_call_chain(self):
        chained = ELEM_CLASS + """
        class courier {
            machine dst;
            void dispatch(elem item) {
                machine d;
                d := this.dst;
                send d eItem(item);
            }
        }
        machine station {
            courier c;
            void init() { }
            void handle(elem payload) {
                courier k;
                k := this.c;
                k.dispatch(payload);
            }
            transitions { init: eItem -> handle; handle: eItem -> handle; }
        }
        """
        program = parse_program(chained)
        ownership = OwnershipAnalysis(program)
        assert "item" in ownership.gives_up[("courier", "dispatch")]
        assert "payload" in ownership.gives_up[("station", "handle")]


class TestRespectsOwnership:
    def test_example_5_4_racy_get_flagged(self):
        program = parse_program(LIST_MANAGER)
        analysis = analyze_program(program, xsa=False)
        methods = {v.site.info.decl.name for _m, v in analysis.surviving()}
        assert "get" in methods
        conditions = {
            c
            for _m, v in analysis.surviving()
            for c, _d in v.failures
            if v.site.info.decl.name == "get"
        }
        assert 1 in conditions  # "This violates our first condition"

    def test_example_5_5_repair_needs_xsa(self):
        program = parse_program(LIST_MANAGER_FIXED)
        without = analyze_program(program, xsa=False)
        get_violations = [
            v
            for _m, v in without.surviving()
            if v.site.info.decl.name == "get"
        ]
        # Without xSA, the repaired get is still flagged: list is a member
        # variable, so `this` appears to retain the sent heap.
        assert get_violations

        with_xsa = analyze_program(program, xsa=True)
        get_surviving = [
            v
            for _m, v in with_xsa.surviving()
            if v.site.info.decl.name == "get"
        ]
        assert not get_surviving

    def test_racy_version_flagged_even_with_xsa(self):
        # Soundness: xSA must NOT suppress the real race of Example 4.2.
        program = parse_program(LIST_MANAGER)
        analysis = analyze_program(program, xsa=True)
        methods = {v.site.info.decl.name for _m, v in analysis.surviving()}
        assert "get" in methods

    def test_use_after_send_flagged_condition3(self):
        using = ELEM_CLASS + """
        machine sender {
            void init() { }
            void go(machine payload) {
                elem e;
                int v;
                e := new elem;
                send payload eItem(e);
                v := e.get_val();
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(using)
        analysis = analyze_program(program, xsa=True)
        assert analysis.surviving()
        conditions = {c for _m, v in analysis.surviving() for c, _d in v.failures}
        assert 3 in conditions

    def test_alias_use_after_send_flagged(self):
        # The alias was created BEFORE the send: forward-only taint from
        # the send would miss it; the closure seeding must not.
        aliasing = ELEM_CLASS + """
        machine sender {
            void init() { }
            void go(machine payload) {
                elem e;
                elem alias;
                int v;
                e := new elem;
                alias := e;
                send payload eItem(e);
                v := alias.get_val();
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(aliasing)
        analysis = analyze_program(program, xsa=True)
        assert analysis.surviving()

    def test_send_of_fresh_object_verified(self):
        fresh = ELEM_CLASS + """
        machine producer {
            void init() { }
            void go(machine payload) {
                elem e;
                e := new elem;
                e.set_val(1);
                send payload eItem(e);
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(fresh)
        analysis = analyze_program(program, xsa=True)
        assert analysis.verified

    def test_double_send_in_loop_flagged(self):
        # Sending the same object on every loop iteration is a double
        # give-up; the loop revisit of the send node must be caught.
        double = ELEM_CLASS + """
        machine repeater {
            void init() { }
            void go(machine payload) {
                elem e;
                int i;
                bool more;
                e := new elem;
                i := 0;
                more := i < 2;
                while (more) {
                    send payload eItem(e);
                    i := i + 1;
                    more := i < 2;
                }
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(double)
        analysis = analyze_program(program, xsa=True)
        assert analysis.surviving()

    def test_fresh_send_in_loop_verified(self):
        # A fresh object per iteration is fine — the strong update on the
        # loop-carried variable must prevent a false positive.
        fresh_loop = ELEM_CLASS + """
        machine generator {
            void init() { }
            void go(machine payload) {
                elem e;
                int i;
                bool more;
                i := 0;
                more := i < 3;
                while (more) {
                    e := new elem;
                    send payload eItem(e);
                    i := i + 1;
                    more := i < 3;
                }
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(fresh_loop)
        analysis = analyze_program(program, xsa=True)
        assert analysis.verified


class TestXsaDriver:
    def test_driver_built_for_fixed_manager(self):
        program = parse_program(LIST_MANAGER_FIXED)
        taint = TaintEngine(program)
        driver = build_driver(program, taint, "list_manager")
        assert driver is not None
        labels = {n.label for n in driver.info.cfg.nodes if n.label}
        assert any(label.startswith("dispatch_") for label in labels)

    def test_cross_state_payload_pattern(self):
        # The canonical xSA pattern: payload built in state S1, stored in
        # a field, sent from S2, field reset.  A FP without xSA; verified
        # with xSA.
        staged = ELEM_CLASS + """
        machine stager {
            elem pending;
            void init() { this.pending := null; }
            void prepare(machine payload) {
                elem e;
                e := new elem;
                this.pending := e;
            }
            void flush(machine payload) {
                elem e;
                e := this.pending;
                send payload eItem(e);
                this.pending := null;
            }
            transitions {
                init:    ePrep -> prepare, eFlush -> flush;
                prepare: ePrep -> prepare, eFlush -> flush;
                flush:   ePrep -> prepare, eFlush -> flush;
            }
        }
        """
        program = parse_program(staged)
        without = analyze_program(program, xsa=False)
        assert not without.verified
        with_xsa = analyze_program(program, xsa=True)
        assert with_xsa.verified
        assert any(reason == "xsa" for reason in with_xsa.suppressed.values())

    def test_cross_state_without_reset_stays_flagged(self):
        # Same pattern but the field is NOT reset: the machine really does
        # retain access across states.  xSA must keep the violation.
        leaky = ELEM_CLASS + """
        machine leaker {
            elem pending;
            void init() { this.pending := null; }
            void prepare(machine payload) {
                elem e;
                e := new elem;
                this.pending := e;
            }
            void flush(machine payload) {
                elem e;
                e := this.pending;
                send payload eItem(e);
            }
            void touch(machine payload) {
                elem e;
                e := this.pending;
                e.set_val(3);
            }
            transitions {
                init:    ePrep -> prepare, eFlush -> flush, eTouch -> touch;
                prepare: ePrep -> prepare, eFlush -> flush, eTouch -> touch;
                flush:   ePrep -> prepare, eFlush -> flush, eTouch -> touch;
                touch:   ePrep -> prepare, eFlush -> flush, eTouch -> touch;
            }
        }
        """
        program = parse_program(leaky)
        analysis = analyze_program(program, xsa=True)
        assert not analysis.verified


class TestReadOnlyExtension:
    READONLY_SHARING = ELEM_CLASS + """
    machine broadcaster {
        elem data;
        machine m2;
        machine m3;
        void init() { }
        void share(machine payload) {
            elem e;
            machine d2;
            machine d3;
            e := this.data;
            d2 := this.m2;
            d3 := this.m3;
            send d2 eData(e);
            send d3 eData(e);
        }
        transitions { init: eShare -> share; share: eShare -> share; }
    }
    machine reader {
        void init() { }
        void consume(elem payload) {
            int v;
            v := payload.get_val();
        }
        transitions { init: eData -> consume; consume: eData -> consume; }
    }
    """

    def test_readonly_sharing_suppressed(self):
        program = parse_program(self.READONLY_SHARING)
        without = analyze_program(program, xsa=True, readonly=False)
        assert not without.verified  # double-send of the same reference
        with_ro = analyze_program(program, xsa=True, readonly=True)
        assert with_ro.verified
        assert any(r == "readonly" for r in with_ro.suppressed.values())

    def test_mutating_reader_blocks_suppression(self):
        mutating = self.READONLY_SHARING.replace(
            "v := payload.get_val();", "payload.set_val(9); v := 0;"
        )
        program = parse_program(mutating)
        with_ro = analyze_program(program, xsa=True, readonly=True)
        assert not with_ro.verified
