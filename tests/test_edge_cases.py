"""Edge-case and failure-injection tests across modules."""

import pytest

from repro import (
    AnalysisReport,
    BugFindingRuntime,
    DfsStrategy,
    Event,
    Machine,
    RandomStrategy,
    ScheduleTrace,
    State,
    TestingEngine,
)
from repro.analysis import analyze_program, build_driver, TaintEngine
from repro.analysis.frontend import FrontendError, lower_machines
from repro.errors import AnalysisDiagnostic
from repro.lang import Interpreter, ParseError, parse_program
from repro.testing.strategies import ReplayStrategy


class EKick(Event):
    pass


class EData(Event):
    pass


def run_once(main_cls, seed=0, **kwargs):
    strategy = RandomStrategy(seed=seed)
    strategy.prepare_iteration()
    runtime = BugFindingRuntime(strategy, **kwargs)
    return runtime, runtime.execute(main_cls)


class TestRuntimeEdges:
    def test_self_send_preserves_fifo(self):
        log = []

        class SelfSender(Machine):
            class S(State):
                initial = True
                entry = "go"
                actions = {EKick: "on_kick", EData: "on_data"}

            def go(self):
                self.send(self.id, EKick())
                self.send(self.id, EData())

            def on_kick(self):
                log.append("kick")

            def on_data(self):
                log.append("data")
                self.halt()

        _, result = run_once(SelfSender)
        assert result.status == "ok"
        assert log == ["kick", "data"]

    def test_machine_creating_many_children(self):
        class Parent(Machine):
            class S(State):
                initial = True
                entry = "go"

            def go(self):
                for _ in range(10):
                    self.create_machine(Child)
                self.halt()

        class Child(Machine):
            class S(State):
                initial = True
                entry = "go"

            def go(self):
                self.halt()

        runtime, result = run_once(Parent)
        assert result.status == "ok"
        assert len(runtime.machines) == 11

    def test_double_raise_is_a_bug(self):
        class DoubleRaiser(Machine):
            class S(State):
                initial = True
                entry = "go"
                actions = {EKick: "nop", EData: "nop"}

            def go(self):
                self.raise_event(EKick())
                self.raise_event(EData())

            def nop(self):
                pass

        _, result = run_once(DoubleRaiser)
        assert result.buggy

    def test_nondet_int_range(self):
        seen = set()

        class Chooser(Machine):
            class S(State):
                initial = True
                entry = "go"

            def go(self):
                seen.add(self.nondet_int(4))
                self.halt()

        engine = TestingEngine(
            Chooser, strategy=DfsStrategy(), max_iterations=50,
            stop_on_first_bug=False,
        )
        report = engine.run()
        assert report.exhausted
        assert seen == {0, 1, 2, 3}

    def test_max_steps_zero_like_bound(self):
        from .machines import Ping

        _, result = run_once(Ping, max_steps=2)
        assert result.status == "depth-bound"


class TestReplayEdges:
    def test_replay_of_empty_trace_terminates(self):
        from .machines import Ping

        strategy = ReplayStrategy(ScheduleTrace([]))
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy)
        result = runtime.execute(Ping)
        assert result.status == "ok"
        assert strategy.diverged  # fell back to first-enabled

    def test_replay_with_garbage_machine_ids(self):
        from .machines import Ping

        strategy = ReplayStrategy(ScheduleTrace([("sched", 999)] * 50))
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy)
        result = runtime.execute(Ping)
        assert result.status == "ok"


class TestParserEdges:
    def test_comments_are_skipped(self):
        program = parse_program(
            """
            // a machine with comments
            machine m {
                void init() {
                    int x; // trailing comment
                    x := 1;
                }
                transitions { init: eNever -> init; }
            }
            """
        )
        assert "m" in program.machines

    def test_missing_semicolon_reported(self):
        with pytest.raises(ParseError):
            parse_program("machine m { void init() { int x x := 1; } }")

    def test_machine_without_methods_rejected(self):
        with pytest.raises(ParseError, match="no methods"):
            parse_program("machine empty { }")


class TestInterpreterEdges:
    def test_unbound_send_target_is_error(self):
        program = parse_program(
            """
            machine bad {
                void init() {
                    int x;
                    x := 5;
                    send x eFoo(0);
                }
                transitions { init: eNever -> init; }
            }
            """
        )
        interp = Interpreter(program, instances=["bad"])
        error = interp.run()
        assert error is not None and "not a machine" in error

    def test_halted_queue_drops_messages(self):
        program = parse_program(
            """
            machine a {
                void init() {
                    machine other;
                    other := create b();
                    send other eGo(1);
                    send other eGo(2);
                }
                transitions { init: eNever -> init; }
            }
            machine b {
                void init() { }
                void go(int payload) { }
                transitions { init: eGo -> go; go: eGo -> go; }
            }
            """
        )
        interp = Interpreter(program, instances=["a"])
        assert interp.run() is None


class TestAnalysisEdges:
    def test_diagnostics_render(self):
        diag = AnalysisDiagnostic(
            kind="ownership-violation",
            machine="m",
            method="f",
            node="<n3>",
            variable="x",
            condition=1,
            message="retained",
        )
        text = str(diag)
        assert "m.f" in text and "condition 1" in text
        report = AnalysisReport(program="p", diagnostics=[diag])
        assert not report.verified
        assert "1 potential race" in str(report)

    def test_empty_machine_program_verifies(self):
        program = parse_program(
            """
            machine quiet {
                void init() { }
                transitions { init: eNever -> init; }
            }
            """
        )
        analysis = analyze_program(program)
        assert analysis.verified

    def test_driver_none_for_missing_init(self):
        program = parse_program(
            """
            machine quiet {
                void init() { }
                transitions { init: eNever -> init; }
            }
            """
        )
        taint = TaintEngine(program)
        program.machines["quiet"].initial = "does_not_exist"
        assert build_driver(program, taint, "quiet") is None

    def test_frontend_rejects_try(self):
        class TryUser(Machine):
            class S(State):
                initial = True
                entry = "go"

            def go(self):
                try:
                    self.halt()
                except Exception:
                    pass

        with pytest.raises(FrontendError):
            lower_machines([TryUser])

    def test_frontend_handles_fstrings_and_log(self):
        class Logger(Machine):
            class S(State):
                initial = True
                entry = "go"

            def go(self):
                value = 3
                self.log(f"value is {value}")
                self.halt()

        program = lower_machines([Logger])
        assert analyze_program(program).verified


class TestStrategyEdges:
    def test_dfs_with_single_option_spaces(self):
        dfs = DfsStrategy()
        runs = 0
        while dfs.prepare_iteration() and runs < 10:
            runs += 1
            for _ in range(5):
                assert dfs.pick_int(1) == 0
        assert runs == 1  # no branching: exactly one schedule

    def test_pct_and_delay_always_pick_enabled(self):
        from repro import DelayBoundingStrategy, PctStrategy
        from repro.core.events import MachineId

        enabled = [MachineId(i, f"m{i}") for i in range(3)]
        for strategy in (PctStrategy(seed=1), DelayBoundingStrategy(seed=1)):
            strategy.prepare_iteration()
            for _ in range(20):
                assert strategy.pick_machine(enabled, enabled[0]) in enabled
