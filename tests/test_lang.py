"""Tests for the core calculus: parser, CFGs, interpreter, race detector."""

import pytest

from repro.lang import (
    Assign,
    Call,
    Cfg,
    If,
    Interpreter,
    LoadField,
    MethodDecl,
    ParseError,
    Return,
    Send,
    StoreField,
    VarDecl,
    While,
    explore,
    parse_program,
)

from .lang_programs import (
    ASSERT_FAIL,
    COUNTER,
    LIST_MANAGER,
    LIST_MANAGER_FIXED,
    NONDET_ASSERT,
)


class TestParser:
    def test_parses_paper_example(self):
        program = parse_program(LIST_MANAGER)
        assert set(program.machines) == {"list_manager", "client"}
        assert "elem" in program.classes
        elem = program.classes["elem"]
        assert [f.name for f in elem.fields] == ["val", "next"]
        assert set(elem.methods) == {"get_val", "get_next", "set_val", "set_next"}

    def test_machine_transition_function(self):
        program = parse_program(LIST_MANAGER)
        manager = program.machines["list_manager"]
        assert manager.initial == "init"
        handler = manager.transition("init", "eAdd")
        assert handler is not None
        assert handler.method == "add"
        assert handler.next_state == "add"
        assert manager.transition("init", "eUnknown") is None

    def test_statement_forms(self):
        program = parse_program(LIST_MANAGER)
        add = program.method("list_manager", "add")
        kinds = [type(s).__name__ for s in add.body]
        assert kinds == ["LoadField", "Call", "StoreField"]
        get = program.method("list_manager", "get")
        assert isinstance(get.body[1], Send)
        assert get.body[1].event == "eReply"
        assert get.body[1].arg == "tmp"

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError, match="line"):
            parse_program("class broken {\n  int x\n}")

    def test_reference_params_detected(self):
        program = parse_program(LIST_MANAGER)
        add = program.method("list_manager", "add")
        assert add.reference_params() == ["payload"]
        bump = parse_program(COUNTER).method("counter", "bump")
        assert bump.reference_params() == []


class TestCfg:
    def _method(self, body):
        return MethodDecl(name="m", params=[], locals=[], body=body)

    def test_straight_line(self):
        cfg = Cfg(self._method([Assign("a", "b"), Assign("c", "a")]))
        stmts = cfg.statement_nodes()
        assert len(stmts) == 2
        assert cfg.entry.succs == [stmts[0]]
        assert stmts[0].succs == [stmts[1]]
        assert stmts[1].succs == [cfg.exit]

    def test_if_branches_reconverge(self):
        body = [
            If("c", [Assign("a", "x")], [Assign("a", "y")]),
            Assign("z", "a"),
        ]
        cfg = Cfg(self._method(body))
        cond = next(n for n in cfg.nodes if isinstance(n.stmt, If))
        assert len(cond.succs) == 2
        join = next(
            n for n in cfg.nodes if isinstance(n.stmt, Assign) and n.stmt.dst == "z"
        )
        assert len(join.preds) == 2

    def test_if_without_else_falls_through(self):
        body = [If("c", [Assign("a", "x")], []), Assign("z", "a")]
        cfg = Cfg(self._method(body))
        cond = next(n for n in cfg.nodes if isinstance(n.stmt, If))
        join = next(
            n for n in cfg.nodes if isinstance(n.stmt, Assign) and n.stmt.dst == "z"
        )
        assert join in cond.succs  # direct fall-through edge

    def test_while_has_back_edge(self):
        body = [While("c", [Assign("a", "x")]), Return("a")]
        cfg = Cfg(self._method(body))
        cond = next(n for n in cfg.nodes if isinstance(n.stmt, While))
        inner = next(
            n for n in cfg.nodes if isinstance(n.stmt, Assign) and n.stmt.dst == "a"
        )
        assert inner in cond.succs
        assert cond in inner.succs  # back edge

    def test_return_connects_to_exit(self):
        body = [If("c", [Return("x")], []), Assign("z", "y")]
        cfg = Cfg(self._method(body))
        ret = next(n for n in cfg.nodes if isinstance(n.stmt, Return))
        assert ret.succs == [cfg.exit]

    def test_reachability_queries(self):
        body = [Assign("a", "b"), Assign("c", "a"), Assign("d", "c")]
        cfg = Cfg(self._method(body))
        first, second, third = cfg.statement_nodes()
        assert second in cfg.reachable_from(first)
        assert first not in cfg.reachable_from(second)
        assert first in cfg.reaching(third)


class TestInterpreter:
    def test_counter_executes(self):
        program = parse_program(COUNTER)
        interp = Interpreter(program, instances=["driver"], seed=1)
        error = interp.run()
        assert error is None
        counter = interp.machines[1]
        value = interp.heap[(counter.self_ref.id, "count")]
        assert value == 3  # 0 + 1 + 2, queue order preserved per sender

    def test_assert_failure_reported(self):
        program = parse_program(ASSERT_FAIL)
        interp = Interpreter(program, instances=["failing"])
        error = interp.run()
        assert error is not None and "assertion failed" in error

    def test_nondet_explored_systematically(self):
        program = parse_program(NONDET_ASSERT)
        result = explore(program, instances=["coin"], max_schedules=100)
        assert result.exhausted
        # Exactly one of the four choice combinations fails.
        assert len(result.errors) == 1

    def test_method_calls_and_heap(self):
        program = parse_program(LIST_MANAGER)
        interp = Interpreter(program, instances=["client"], seed=0)
        error = interp.run()
        assert error is None
        # The client stored the received list head in its `item` field.
        client = interp.machines[0]
        item = interp.heap[(client.self_ref.id, "item")]
        assert item is not None
        assert interp.heap[(item.id, "val")] == 2

    def test_step_bound_detected(self):
        looping = """
        machine spinner {
            void init() {
                int one;
                one := 1;
                while (one) { one := 1; }
            }
            transitions { init: eNever -> init; }
        }
        """
        program = parse_program(looping)
        interp = Interpreter(program, instances=["spinner"], max_steps=100)
        error = interp.run()
        assert error is not None and "step bound" in error


class TestRaceDetection:
    def test_racy_list_manager_races_dynamically(self):
        # Example 4.2: "the machine potentially suffers from a data race: a
        # reference to the list is still held by the machine after being
        # used as a payload in the send statement".
        program = parse_program(LIST_MANAGER)
        result = explore(program, instances=["client"], max_schedules=3000)
        assert not result.race_free
        race = result.races[0]
        assert race.field in ("val", "next")

    def test_fixed_list_manager_is_race_free(self):
        # Example 5.5's repair eliminates the race in every interleaving
        # of this client (the manager drops its reference before replying).
        program = parse_program(LIST_MANAGER_FIXED)
        result = explore(program, instances=["client"], max_schedules=3000)
        assert result.race_free

    def test_counter_has_no_races(self):
        program = parse_program(COUNTER)
        result = explore(program, instances=["driver"], max_schedules=3000)
        assert result.exhausted
        assert result.race_free

    def test_send_receive_establishes_order(self):
        # Sequential handoff through an event is not a race even though
        # both machines touch the same object.
        handoff = """
        class box { int v; void set(int x) { this.v := x; } int get() { int r; r := this.v; return r; } }
        machine producer {
            void init() {
                box b;
                machine c;
                b := new box;
                b.set(1);
                c := create consumer();
                send c eBox(b);
            }
            transitions { init: eNever -> init; }
        }
        machine consumer {
            void init() { }
            void take(box payload) {
                payload.set(2);
            }
            transitions { init: eBox -> take; take: eBox -> take; }
        }
        """
        program = parse_program(handoff)
        result = explore(program, instances=["producer"], max_schedules=3000)
        assert result.exhausted
        assert result.race_free
