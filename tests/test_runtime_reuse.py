"""Tests for the worker back-ends: cross-backend trace determinism,
runtime reuse via ``reset()``, and worker-pool hygiene.

The contract under test is the acceptance criterion shared by the pooled
runtime and the single-thread continuation runtime: for a fixed strategy
seed, the inline, pooled and legacy thread-per-execution back-ends
produce bit-identical schedule traces — with and without specification
monitors attached — so DFS backtracking, replay, PCT semantics and
monitor-based liveness detection are provably independent of the worker
back-end.
"""

import pytest

from repro import (
    BugFindingRuntime,
    DfsStrategy,
    FairRandomStrategy,
    PctStrategy,
    RandomStrategy,
    ScheduleTrace,
    replay,
)
from repro.bench import buggy_main, get, table2_suite
from repro.testing import WorkerPool, shared_worker_pool

from .machines import Ping, RacyCounter, SelfLoop

BENCH_NAMES = [b.name for b in table2_suite()]
BACKENDS = ("inline", "pool", "spawn")

# Registry variants that ship specification monitors: the safety-monitor
# retrofits plus the liveness suite (hot/cold temperature detection).
MONITORED = ["Raft", "TwoPhaseCommit", "ProcessScheduler", "TokenRing"]


def _traces(main_cls, strategy, mode, iterations, max_steps=2_000,
            monitors=(), max_hot_steps=1000):
    runtime = BugFindingRuntime(
        strategy, max_steps=max_steps, workers=mode,
        monitors=monitors, max_hot_steps=max_hot_steps,
    )
    collected = []
    for _ in range(iterations):
        if not strategy.prepare_iteration():
            break
        collected.append(runtime.execute(main_cls).trace)
    return collected


class TestBackendTraceDeterminism:
    @pytest.mark.parametrize("bench_name", BENCH_NAMES)
    @pytest.mark.parametrize("mode", ["inline", "spawn"])
    def test_backend_traces_identical_across_registry(self, bench_name, mode):
        main_cls = buggy_main(bench_name)
        pool = _traces(main_cls, RandomStrategy(seed=11), "pool", 5)
        other = _traces(main_cls, RandomStrategy(seed=11), mode, 5)
        assert len(pool) == len(other) == 5
        for a, b in zip(pool, other):
            assert a == b  # flat-array equality
            assert a.decisions == b.decisions  # tuple-level equality
            assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("bench_name", MONITORED)
    @pytest.mark.parametrize("mode", ["inline", "spawn"])
    def test_monitor_attached_traces_identical_across_backends(
        self, bench_name, mode
    ):
        # Monitor invocations and temperature firings are trace-recorded,
        # so monitored runs must stay bit-identical across back-ends too
        # (fair strategy: liveness temperature detection is armed).
        variant = get(bench_name).buggy
        kwargs = dict(
            monitors=variant.monitors, max_hot_steps=150, max_steps=5_000
        )
        pool = _traces(
            variant.main, FairRandomStrategy(seed=3), "pool", 5, **kwargs
        )
        other = _traces(
            variant.main, FairRandomStrategy(seed=3), mode, 5, **kwargs
        )
        assert len(pool) == len(other) == 5
        assert any(len(trace) for trace in pool)
        for a, b in zip(pool, other):
            assert a.decisions == b.decisions
            assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: RandomStrategy(seed=5),
            lambda: DfsStrategy(),
            lambda: PctStrategy(seed=5, depth=3),
        ],
        ids=["random", "dfs", "pct"],
    )
    @pytest.mark.parametrize("mode", ["inline", "spawn"])
    def test_strategies_agree_between_backends(self, strategy_factory, mode):
        pool = _traces(RacyCounter, strategy_factory(), "pool", 20)
        other = _traces(RacyCounter, strategy_factory(), mode, 20)
        assert pool == other

    @pytest.mark.parametrize("found_in", BACKENDS)
    def test_bug_found_in_any_mode_replays_in_every_mode(self, found_in):
        strategy = RandomStrategy(seed=3)
        runtime = BugFindingRuntime(strategy, max_steps=2_000, workers=found_in)
        result = None
        for _ in range(500):
            strategy.prepare_iteration()
            result = runtime.execute(RacyCounter)
            if result.buggy:
                break
        assert result is not None and result.buggy
        for mode in BACKENDS:
            replayed = replay(RacyCounter, result.trace, workers=mode)
            assert replayed.buggy
            assert replayed.bug.message == result.bug.message
            assert replayed.trace.fingerprint() == result.trace.fingerprint()

    def test_trace_json_wire_format_unchanged(self):
        # The flat-array encoding must serialize exactly like the old
        # list-of-tuples representation: [["sched", 1], ["bool", 0], ...].
        trace = ScheduleTrace([("sched", 1), ("bool", 0), ("int", 7)])
        assert trace.to_json() == '[["sched", 1], ["bool", 0], ["int", 7]]'
        restored = ScheduleTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.decisions == [("sched", 1), ("bool", 0), ("int", 7)]


class TestRuntimeReuse:
    """``reset()`` must repair all per-execution state, including after
    executions canceled mid-schedule (the historical stale ``_current``/
    counter bug)."""

    @pytest.mark.parametrize("mode", list(BACKENDS))
    def test_execute_twice_matches_fresh_runtime(self, mode):
        def fresh():
            strategy = RandomStrategy(seed=9)
            strategy.prepare_iteration()
            return BugFindingRuntime(strategy, workers=mode).execute(Ping)

        strategy = RandomStrategy(seed=9)
        runtime = BugFindingRuntime(strategy, workers=mode)
        strategy.prepare_iteration()
        first = runtime.execute(Ping)
        strategy = RandomStrategy(seed=9)
        runtime.strategy = strategy
        strategy.prepare_iteration()
        second = runtime.execute(Ping)

        reference = fresh()
        for result in (first, second):
            assert result.status == reference.status == "ok"
            assert result.steps == reference.steps
            assert result.scheduling_points == reference.scheduling_points
            assert result.trace == reference.trace

    @pytest.mark.parametrize("mode", list(BACKENDS))
    def test_canceled_execution_leaves_no_stale_state(self, mode):
        # A depth-bounded execution is canceled mid-schedule: workers are
        # unwound by cancellation, counters are non-zero, _current points
        # at the canceled machine.  The next execute() must start clean.
        strategy = RandomStrategy(seed=0)
        runtime = BugFindingRuntime(strategy, max_steps=50, workers=mode)
        strategy.prepare_iteration()
        bounded = runtime.execute(SelfLoop)
        assert bounded.status == "depth-bound"
        assert runtime._steps > 0

        strategy.prepare_iteration()
        clean = runtime.execute(Ping)
        assert clean.status == "ok"
        assert not clean.buggy
        # Counters restarted from zero (Ping's run is much shorter than
        # the 50-step bound the canceled SelfLoop execution burned).
        assert clean.steps <= 50
        assert runtime._current is not None  # last scheduled machine, this run
        assert len(runtime.machines) == 2  # Ping + Pong only, registry reset

    @pytest.mark.parametrize("mode", list(BACKENDS))
    def test_stop_check_cancellation_then_reuse(self, mode):
        stop = {"now": True}
        strategy = RandomStrategy(seed=0)
        runtime = BugFindingRuntime(
            strategy, max_steps=10**9, stop_check=lambda: stop["now"],
            workers=mode,
        )
        strategy.prepare_iteration()
        stopped = runtime.execute(SelfLoop)
        assert stopped.status == "stopped"

        stop["now"] = False
        strategy.prepare_iteration()
        ok = runtime.execute(Ping)
        assert ok.status == "ok"

    def test_buggy_then_clean_execution_reuse(self):
        strategy = RandomStrategy(seed=3)
        runtime = BugFindingRuntime(strategy, workers="pool")
        buggy = None
        for _ in range(500):
            strategy.prepare_iteration()
            result = runtime.execute(RacyCounter)
            if result.buggy:
                buggy = result
                break
        assert buggy is not None
        strategy.prepare_iteration()
        after = runtime.execute(Ping)
        assert after.status == "ok"
        assert after.bug is None  # the old bug does not leak into new runs

    def test_inline_canceled_execution_unwinds_generators_then_reuses(self):
        # Inline reset() regression: a depth-bounded execution leaves
        # suspended coroutine bodies behind; _run_inline must unwind
        # every one of them (worker.gen cleared) so the next execute()
        # starts from a clean seat list.
        strategy = RandomStrategy(seed=0)
        runtime = BugFindingRuntime(strategy, max_steps=50, workers="inline")
        strategy.prepare_iteration()
        bounded = runtime.execute(SelfLoop)
        assert bounded.status == "depth-bound"
        assert all(w.gen is None for w in runtime._worker_list)

        strategy.prepare_iteration()
        clean = runtime.execute(Ping)
        assert clean.status == "ok"
        assert clean.steps <= 50
        assert len(runtime.machines) == 2  # Ping + Pong only, registry reset


class TestDispatchCompilation:
    def test_static_and_class_method_handlers_still_work(self):
        # The compiled dispatch calls plain methods as fn(self); anything
        # else must keep the historical getattr(self, name)() semantics.
        from repro import Event, Machine, State

        log = []

        class EKick(Event):
            pass

        class Mixed(Machine):
            class Init(State):
                initial = True
                entry = "enter_static"
                actions = {EKick: "act_class"}

            @staticmethod
            def enter_static():
                log.append("static-entry")

            @classmethod
            def act_class(cls):
                log.append(("class-action", cls.__name__))

        class Driver(Mixed):
            class Init(State):
                initial = True
                entry = "go"
                actions = {EKick: "act_class"}

            def go(self):
                log.append("driver")
                self.send(self.id, EKick())

        strategy = RandomStrategy(seed=0)
        strategy.prepare_iteration()
        result = BugFindingRuntime(strategy).execute(Driver)
        assert result.status == "ok", result.bug
        assert log == ["driver", ("class-action", "Driver")]

    def test_pct_counts_forced_points_as_steps(self):
        # The forced-decision fast path must not erase PCT's step index:
        # SelfLoop's schedule is entirely forced (one machine), yet the
        # strategy's step counter has to advance so change points can
        # land anywhere in the execution, as before the fast path.
        strategy = PctStrategy(seed=1, depth=3)
        strategy.prepare_iteration()
        runtime = BugFindingRuntime(strategy, max_steps=100)
        result = runtime.execute(SelfLoop)
        assert result.status == "depth-bound"
        assert strategy._step >= result.scheduling_points > 0


class TestTaintedRuntime:
    """A worker thread that outlives the end-of-execution barrier taints
    the runtime: reusing it would clear ``_canceled`` under the straggler
    and let it corrupt the next execution's state.  A tainted runtime
    refuses execute(); drive() transparently rebuilds a fresh one."""

    @pytest.mark.parametrize("mode", ["pool", "spawn"])
    def test_slow_unwinding_worker_taints_runtime(self, mode):
        import time as time_module

        from repro import Event, Machine, PSharpError, State

        class EGo(Event):
            pass

        class SlowFinally(Machine):
            class Init(State):
                initial = True
                entry = "go"
                actions = {EGo: "again"}

            def go(self):
                self.create_machine(Boomer, self.id)

            def again(self):
                try:
                    # Blocks at a scheduling point inside the try; the
                    # cancellation unwind then runs the slow finally.
                    self.send(self.id, EGo())
                except BaseException:
                    time_module.sleep(0.5)
                    raise

        class Boomer(Machine):
            class Init(State):
                initial = True
                entry = "boom"

            def boom(self):
                self.send(self.payload, EGo())
                self.assert_that(False, "seeded bug")

        strategy = RandomStrategy(seed=2)
        runtime = BugFindingRuntime(strategy, workers=mode)
        runtime._retire_timeout = 0.05
        tainted_seen = False
        for _ in range(20):
            strategy.prepare_iteration()
            runtime.execute(SlowFinally)
            if runtime.tainted:
                tainted_seen = True
                break
        # Any schedule where Boomer's bug fires while SlowFinally sits at
        # its send scheduling point makes the cancellation unwind run the
        # slow finally, which outlives the shortened barrier.
        assert tainted_seen
        with pytest.raises(PSharpError, match="tainted"):
            runtime.execute(Ping)

    def test_drive_recovers_from_tainted_runtime(self):
        from repro.testing.engine import drive

        built = []

        def counting_factory(**kwargs):
            runtime = BugFindingRuntime(**kwargs)
            runtime._retire_timeout = 0.05
            built.append(runtime)
            return runtime

        # Taint the first runtime artificially after its first execution:
        # drive must build a replacement and keep iterating.
        class TaintOnce:
            fired = False

        original_execute = BugFindingRuntime.execute

        def tainting_execute(self, main_cls, payload=None):
            result = original_execute(self, main_cls, payload)
            if not TaintOnce.fired:
                TaintOnce.fired = True
                self.tainted = True
            return result

        BugFindingRuntime.execute = tainting_execute
        try:
            report = drive(
                Ping, None, RandomStrategy(seed=1),
                max_iterations=5, time_limit=30.0,
                stop_on_first_bug=False,
                runtime_factory=counting_factory,
            )
        finally:
            BugFindingRuntime.execute = original_execute
        assert report.iterations == 5
        assert len(built) == 2  # original + post-taint replacement


class TestWorkerPool:
    def test_pool_size_stays_bounded_across_iterations(self):
        pool = WorkerPool()
        strategy = RandomStrategy(seed=1)
        runtime = BugFindingRuntime(strategy, workers="pool", pool=pool)
        for _ in range(30):
            strategy.prepare_iteration()
            runtime.execute(RacyCounter)
        # RacyCounter binds 3 machines per execution; 30 iterations must
        # reuse the same 3 pooled threads, not grow the pool.
        assert pool.size == 3
        assert pool.idle == 3
        runtime.close()
        assert pool.size == 0

    def test_shared_pool_is_default_and_reused(self):
        shared = shared_worker_pool()
        strategy = RandomStrategy(seed=1)
        runtime = BugFindingRuntime(strategy, workers="pool")
        assert runtime._pool is shared
        strategy.prepare_iteration()
        runtime.execute(Ping)
        before = shared.size
        strategy.prepare_iteration()
        runtime.execute(Ping)
        assert shared.size == before  # no growth on reuse

    def test_invalid_workers_mode_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            BugFindingRuntime(RandomStrategy(seed=0), workers="greenlet")
