"""Tests contrasting the SOTER-style baseline with the P# analysis."""

from repro.analysis import analyze_program
from repro.lang import parse_program
from repro.soter import soter_analyze

from .lang_programs import ELEM_CLASS, LIST_MANAGER, LIST_MANAGER_FIXED


class TestSoterBaseline:
    def test_flags_genuinely_racy_program(self):
        program = parse_program(LIST_MANAGER)
        violations = soter_analyze(program)
        assert violations  # the real race is caught

    def test_false_positive_on_field_reset(self):
        # Example 5.5's repair is invisible to a flow-insensitive
        # analysis: SOTER-style still flags it, ours verifies it.
        program = parse_program(LIST_MANAGER_FIXED)
        soter = soter_analyze(program)
        assert soter  # false positive

        ours = analyze_program(program, xsa=True)
        get_surviving = [
            v for _m, v in ours.surviving() if v.site.info.decl.name == "get"
        ]
        assert not get_surviving  # we verify the repair

    def test_false_positive_on_fresh_loop_payload(self):
        fresh_loop = ELEM_CLASS + """
        machine generator {
            elem last;
            void init() { }
            void go(machine payload) {
                elem e;
                int i;
                bool more;
                i := 0;
                more := i < 3;
                while (more) {
                    e := new elem;
                    this.last := e;
                    send payload eItem(e);
                    this.last := null;
                    i := i + 1;
                    more := i < 3;
                }
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(fresh_loop)
        assert soter_analyze(program)  # flow-insensitive: flagged
        assert analyze_program(program, xsa=True).verified  # ours: verified

    def test_clean_program_passes_both(self):
        clean = ELEM_CLASS + """
        machine producer {
            void init() { }
            void go(machine payload) {
                elem e;
                e := new elem;
                send payload eItem(e);
            }
            transitions { init: eGo -> go; go: eGo -> go; }
        }
        """
        program = parse_program(clean)
        assert not soter_analyze(program)
        assert analyze_program(program).verified
