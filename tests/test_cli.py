"""Subprocess tests for the ``python -m repro`` command-line tester.

These run the real module entry point end to end (argument parsing,
target resolution, campaign execution, trace files, exit codes) — the
same invocations the CI smoke lane makes.
"""

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def run_cli(*args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=timeout,
    )


class TestBenchList:
    def test_lists_registry(self):
        proc = run_cli("bench", "--list")
        assert proc.returncode == 0, proc.stderr
        for name in ("Raft", "TwoPhaseCommit", "BoundedAsync", "TokenRing"):
            assert name in proc.stdout
        assert "ElectionSafetyMonitor" in proc.stdout


class TestTestCommand:
    def test_benchmark_campaign_and_replay_roundtrip(self, tmp_path):
        trace = tmp_path / "bounded.trace.json"
        proc = run_cli(
            "test", "BoundedAsync", "--max-iterations", "50", "--seed", "7",
            "--expect-bug", "--save-trace", str(trace),
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "backend: inline" in proc.stdout
        assert "bug:" in proc.stdout
        assert trace.exists()

        replayed = run_cli(
            "replay", "BoundedAsync", "--trace", str(trace), "--expect-bug"
        )
        assert replayed.returncode == 0, replayed.stderr + replayed.stdout
        assert "reproduced:" in replayed.stdout

    def test_module_class_target(self):
        proc = run_cli(
            "test", "tests.machines:RacyCounter",
            "--max-iterations", "300", "--seed", "1", "--expect-bug",
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "bug:" in proc.stdout

    def test_strategy_parameters(self):
        proc = run_cli(
            "test", "BoundedAsync", "--strategy", "pct,depth=10,seed=3",
            "--max-iterations", "30",
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert proc.stdout.startswith("pct:")

    def test_portfolio_flag(self):
        proc = run_cli(
            "test", "BoundedAsync", "--portfolio", "2", "--seed", "7",
            "--max-iterations", "100", "--time-limit", "60",
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "worker" in proc.stdout  # per-strategy sub-report lines

    def test_expect_bug_unmet_exits_1(self):
        proc = run_cli(
            "test", "tests.machines:Ping",
            "--max-iterations", "20", "--seed", "1", "--expect-bug",
        )
        assert proc.returncode == 1, proc.stderr + proc.stdout
        assert "no bug found" in proc.stdout

    def test_unknown_benchmark_exits_2(self):
        proc = run_cli("test", "NoSuchBenchmark", "--max-iterations", "5")
        assert proc.returncode == 2
        assert "unknown benchmark" in proc.stderr

    def test_portfolio_and_strategy_conflict(self):
        proc = run_cli(
            "test", "BoundedAsync", "--portfolio", "2",
            "--strategy", "random", "--max-iterations", "5",
        )
        assert proc.returncode == 2
        assert "not both" in proc.stderr


class TestMainInProcess:
    """The same flows through ``repro.__main__.main`` directly — fast,
    and visible to in-process coverage measurement."""

    def test_bench_list(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "Raft" in out and "liveness" in out

    def test_test_save_trace_and_replay(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "bounded.json"
        code = main([
            "test", "BoundedAsync", "--max-iterations", "50", "--seed", "7",
            "--expect-bug", "--save-trace", str(trace),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "trace saved" in out
        assert main([
            "replay", "BoundedAsync", "--trace", str(trace), "--expect-bug",
        ]) == 0
        assert "reproduced:" in capsys.readouterr().out

    def test_explicit_strategies_form_a_portfolio(self, capsys):
        from repro.__main__ import main

        code = main([
            "test", "TwoPhaseCommit",
            "--strategy", "random,seed=7", "--strategy", "fair-random,seed=8",
            "--max-iterations", "100", "--time-limit", "60",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count("worker") >= 2

    def test_exit_codes(self, capsys):
        from repro.__main__ import main

        assert main(["test", "NoSuchBenchmark", "--max-iterations", "5"]) == 2
        assert main([
            "test", "tests.machines:Ping",
            "--max-iterations", "10", "--seed", "1", "--expect-bug",
        ]) == 1
        capsys.readouterr()

    def test_config_errors_exit_2_not_traceback(self, capsys):
        from repro.__main__ import main

        # Misspelled strategy parameter: a clean config error, no crash.
        assert main([
            "test", "BoundedAsync", "--strategy", "pct,dept=3",
            "--max-iterations", "5",
        ]) == 2
        assert "invalid parameters" in capsys.readouterr().err
        # --portfolio 0 hits TestConfig validation, not a silent 4-worker run.
        assert main([
            "test", "BoundedAsync", "--portfolio", "0", "--max-iterations", "5",
        ]) == 2
        assert "portfolio_workers" in capsys.readouterr().err
        # bench without --list refuses instead of pretending the flag matters.
        assert main(["bench"]) == 2
        capsys.readouterr()

    def test_save_trace_without_bug_warns(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "none.json"
        assert main([
            "test", "tests.machines:Ping", "--max-iterations", "5",
            "--seed", "1", "--save-trace", str(trace),
        ]) == 0
        captured = capsys.readouterr()
        assert "no trace to save" in captured.err
        assert not trace.exists()


class TestConfigFile:
    """``test --config campaign.json`` — the file-driven campaign entry."""

    def _write(self, tmp_path, obj):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(obj), encoding="utf-8")
        return path

    def test_config_file_runs_campaign(self, tmp_path):
        path = self._write(
            tmp_path,
            {
                "version": 1,
                "program": "BoundedAsync",
                "strategy": "random",
                "seed": 7,
                "max_iterations": 50,
            },
        )
        proc = run_cli("test", "--config", str(path), "--expect-bug")
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "bug:" in proc.stdout

    def test_unknown_field_exits_2(self, tmp_path):
        path = self._write(
            tmp_path, {"version": 1, "program": "Raft", "max_iteratons": 5}
        )
        proc = run_cli("test", "--config", str(path))
        assert proc.returncode == 2
        assert "unknown field" in proc.stderr

    def test_target_and_config_conflict(self, tmp_path):
        path = self._write(tmp_path, {"version": 1, "program": "Raft"})
        proc = run_cli("test", "BoundedAsync", "--config", str(path))
        assert proc.returncode == 2
        assert "exactly one" in proc.stderr

    def test_neither_target_nor_config_exits_2(self):
        proc = run_cli("test")
        assert proc.returncode == 2
        assert "exactly one" in proc.stderr

    def test_strategy_flag_conflicts_with_config(self, tmp_path):
        path = self._write(tmp_path, {"version": 1, "program": "Raft"})
        proc = run_cli("test", "--config", str(path), "--strategy", "dfs")
        assert proc.returncode == 2
        assert "--strategy" in proc.stderr
