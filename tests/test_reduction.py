"""Schedule-space reduction: DPOR, state caching, learned clauses.

Covers the three layers of :mod:`repro.testing.reduction` end to end:
the stable state hashing (``PYTHONHASHSEED``-proof, container-order
independent), the exhaustive-DFS A/B contract (identical bug set, at
most 0.6x the schedules), cross-back-end determinism of fingerprints
and pruning decisions (including the ``workers="auto"`` mid-campaign
restart), replay fidelity of bug traces found under reduction, the
incremental enabled-set's equivalence to the reference seat walk, the
``consulted_decisions`` accounting fix for DPOR-forced choices, and the
config/CLI/report plumbing that surfaces it all.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import get
from repro.errors import PSharpError
from repro.testing import (
    DEFAULT_STATE_CACHE_SIZE,
    REDUCTION_MODES,
    BugFindingRuntime,
    DfsStrategy,
    IterativeDeepeningDfsStrategy,
    RandomStrategy,
    ReductionEngine,
    ReplayStrategy,
    ScheduleTrace,
    TestConfig,
    TestReport,
    drive,
    normalize_reduction,
    replay,
)
from repro.testing.reduction import REASON_STATE, stable_update
from repro.testing.reporting import report_json
from repro.testing.trace import REDUCTION, SCHED

from .machines import Ping
from .test_config import MidCampaignRacer

ROOT = Path(__file__).resolve().parents[1]

#: Exhaustive-DFS A/B fixtures: (benchmark, max_depth, max_steps).
#: Depths chosen so every arm terminates by exhaustion in well under a
#: second on the inline backend; TokenRing's steps are capped because
#: beyond ``max_depth`` the DFS falls back to first-enabled and the
#: ring otherwise spins to the default budget.
AB_CASES = [
    ("BoundedAsync", 8, 2_000),
    ("TwoPhaseCommit", 8, 2_000),
    ("TokenRing", 7, 200),
]


def _exhaustive(name, depth, max_steps, mode, workers="inline", **kwargs):
    """Run a to-exhaustion DFS campaign over a buggy registry variant."""
    variant = get(name).buggy
    return drive(
        variant.main,
        variant.payload,
        DfsStrategy(max_depth=depth),
        max_iterations=500_000,
        time_limit=240.0,
        max_steps=max_steps,
        stop_on_first_bug=False,
        workers=workers,
        monitors=tuple(variant.monitors),
        reduction=mode,
        **kwargs,
    )


def _bug_set(report):
    return sorted({(bug.kind, bug.message) for bug in report.bugs})


def _digest(obj):
    from hashlib import blake2b

    h = blake2b(digest_size=16)
    stable_update(h.update, obj)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Mode validation and config plumbing
# ---------------------------------------------------------------------------
class TestModeValidation:
    def test_normalize_accepts_every_mode(self):
        assert normalize_reduction(None) == "none"
        for mode in REDUCTION_MODES:
            assert normalize_reduction(mode) == mode

    def test_normalize_rejects_unknown(self):
        with pytest.raises(PSharpError, match="reduction must be one of"):
            normalize_reduction("por")

    def test_engine_refuses_none_mode(self):
        with pytest.raises(PSharpError, match="active"):
            ReductionEngine("none")

    def test_engine_refuses_empty_cache(self):
        with pytest.raises(PSharpError, match="state_cache_size"):
            ReductionEngine("dpor+state-cache", state_cache_size=0)

    def test_config_validates_and_round_trips(self):
        config = TestConfig(
            program=Ping, reduction="dpor+state-cache", state_cache_size=512
        )
        again = TestConfig.from_json(config.to_json())
        assert again.reduction == "dpor+state-cache"
        assert again.state_cache_size == 512

    def test_config_defaults(self):
        config = TestConfig(program=Ping)
        assert config.reduction == "none"
        assert config.state_cache_size == DEFAULT_STATE_CACHE_SIZE

    def test_config_rejects_bad_values(self):
        with pytest.raises(PSharpError):
            TestConfig(program=Ping, reduction="bogus")
        with pytest.raises(PSharpError):
            TestConfig(program=Ping, state_cache_size=0)


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------
class TestStableHash:
    def test_dict_insertion_order_independent(self):
        a = {"x": 1, "y": [2, 3]}
        b = {"y": [2, 3], "x": 1}
        assert _digest(a) == _digest(b)

    def test_set_iteration_order_independent(self):
        assert _digest({"a", "bb", "ccc"}) == _digest({"ccc", "a", "bb"})

    def test_container_types_do_not_collide(self):
        digests = {_digest([1, 2]), _digest((1, 2)), _digest("12"), _digest(12)}
        assert len(digests) == 4

    def test_scalars_distinguished(self):
        assert _digest(True) != _digest(1)
        assert _digest(None) != _digest(False)
        assert _digest(1.0) != _digest(1)

    def test_default_repr_degrades_deterministically(self):
        class Opaque:
            pass

        assert _digest(Opaque()) == _digest(Opaque())

    def test_hash_seed_independent(self):
        # The whole point: equal values digest equally in a process with a
        # different (randomized) string hash seed.
        code = (
            "from repro.testing.reduction import stable_update\n"
            "from hashlib import blake2b\n"
            "h = blake2b(digest_size=16)\n"
            "stable_update(h.update, {'x': {1, 2}, 'y': ('z', b'q')})\n"
            "print(h.hexdigest())\n"
        )
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        outs = set()
        for seed in ("0", "4242"):
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            outs.add(proc.stdout.strip())
        assert len(outs) == 1
        assert outs == {_digest({"x": {1, 2}, "y": ("z", b"q")})}


# ---------------------------------------------------------------------------
# Exhaustive-DFS A/B: same bugs, strictly fewer schedules
# ---------------------------------------------------------------------------
class TestExhaustiveAB:
    @pytest.mark.parametrize("name,depth,max_steps", AB_CASES)
    def test_dpor_same_bugs_fewer_schedules(self, name, depth, max_steps):
        base = _exhaustive(name, depth, max_steps, "none")
        dpor = _exhaustive(name, depth, max_steps, "dpor")
        assert base.exhausted and dpor.exhausted
        assert _bug_set(dpor) == _bug_set(base)
        # The acceptance gate: reduction must pay for itself.
        assert dpor.iterations <= 0.6 * base.iterations
        assert dpor.schedules_pruned > 0
        assert base.schedules_pruned == 0 and base.distinct_states == 0

    @pytest.mark.parametrize("name,depth,max_steps", AB_CASES)
    def test_state_cache_same_bugs_fewer_still(self, name, depth, max_steps):
        dpor = _exhaustive(name, depth, max_steps, "dpor")
        cached = _exhaustive(name, depth, max_steps, "dpor+state-cache")
        assert cached.exhausted
        assert _bug_set(cached) == _bug_set(dpor)
        assert cached.iterations < dpor.iterations
        assert cached.distinct_states > 0
        assert 0.0 < cached.redundancy_ratio < 1.0

    def test_clause_mode_same_bugs(self):
        cached = _exhaustive("TwoPhaseCommit", 8, 2_000, "dpor+state-cache")
        clauses = _exhaustive(
            "TwoPhaseCommit", 8, 2_000, "dpor+state-cache+clauses"
        )
        assert clauses.exhausted
        assert _bug_set(clauses) == _bug_set(cached)
        assert clauses.iterations <= cached.iterations

    def test_consulted_accounting_shrinks_under_dpor(self):
        # The satellite bugfix: DPOR-forced one-branch frames must not be
        # billed as consulted decisions, so the consulted count drops
        # along with the schedule count instead of drifting.
        base = _exhaustive("BoundedAsync", 8, 2_000, "none")
        dpor = _exhaustive("BoundedAsync", 8, 2_000, "dpor")
        assert 0 < dpor.consulted_decisions < base.consulted_decisions


# ---------------------------------------------------------------------------
# Cross-back-end determinism
# ---------------------------------------------------------------------------
class TestCrossBackendDeterminism:
    @pytest.mark.parametrize(
        "mode", ["dpor", "dpor+state-cache", "dpor+state-cache+clauses"]
    )
    def test_backends_agree_on_everything(self, mode):
        reports = {
            workers: _exhaustive("TwoPhaseCommit", 7, 2_000, mode, workers)
            for workers in ("inline", "pool", "spawn")
        }
        inline = reports["inline"]
        assert inline.iterations > 0
        for workers in ("pool", "spawn"):
            other = reports[workers]
            assert other.effective_backend == workers
            assert other.iterations == inline.iterations
            assert other.distinct_states == inline.distinct_states
            assert other.schedules_pruned == inline.schedules_pruned
            assert _bug_set(other) == _bug_set(inline)
            assert [b.trace.fingerprint() for b in other.bugs] == [
                b.trace.fingerprint() for b in inline.bugs
            ]

    def test_auto_restart_matches_explicit_pool(self):
        # MidCampaignRacer spawns an inline-incompatible child
        # mid-execution: workers="auto" restarts the campaign on the
        # pooled backend with a *fresh* reduction engine, so fingerprints
        # and pruning decisions must be bit-identical to an explicit
        # pooled run.
        def campaign(workers):
            return drive(
                MidCampaignRacer,
                None,
                RandomStrategy(seed=3),
                max_iterations=40,
                time_limit=60.0,
                max_steps=2_000,
                stop_on_first_bug=False,
                workers=workers,
                reduction="dpor+state-cache",
            )

        auto = campaign("auto")
        pool = campaign("pool")
        assert auto.effective_backend == "pool"
        assert auto.iterations == pool.iterations
        assert auto.distinct_states == pool.distinct_states
        assert auto.schedules_pruned == pool.schedules_pruned
        assert [b.trace.fingerprint() for b in auto.bugs] == [
            b.trace.fingerprint() for b in pool.bugs
        ]

    def test_state_fingerprint_stable_across_backends(self):
        variant = get("TwoPhaseCommit").buggy

        def initial_fingerprint(workers):
            strategy = DfsStrategy(max_depth=1)
            strategy.prepare_iteration()
            runtime = BugFindingRuntime(
                strategy, max_steps=50, workers=workers,
                monitors=tuple(variant.monitors),
            )
            runtime.execute(variant.main, variant.payload)
            # Post-execution state: every machine settled, same digest
            # expected whichever backend drove the handlers.
            return runtime.state_fingerprint()

        prints = {initial_fingerprint(w) for w in ("inline", "pool", "spawn")}
        assert len(prints) == 1


# ---------------------------------------------------------------------------
# Replay of bugs found under reduction
# ---------------------------------------------------------------------------
class TestReducedTraceReplay:
    def test_bug_trace_replays_on_every_backend(self):
        variant = get("TwoPhaseCommit").buggy
        report = drive(
            variant.main,
            variant.payload,
            DfsStrategy(max_depth=8),
            max_iterations=500_000,
            time_limit=120.0,
            max_steps=2_000,
            stop_on_first_bug=True,
            workers="inline",
            monitors=tuple(variant.monitors),
            reduction="dpor+state-cache",
        )
        bug = report.first_bug
        assert bug is not None
        for workers in ("inline", "pool", "spawn"):
            result = replay(
                variant.main,
                bug.trace,
                variant.payload,
                max_steps=2_000,
                workers=workers,
                monitors=tuple(variant.monitors),
            )
            assert result.status == "bug"
            assert result.bug.kind == bug.kind
            assert result.bug.message == bug.message
            assert result.trace == bug.trace


# ---------------------------------------------------------------------------
# Trace records and replay filtering
# ---------------------------------------------------------------------------
class TestReductionTraceRecords:
    def test_round_trip_and_rendering(self):
        trace = ScheduleTrace()
        trace.record(SCHED, 0)
        trace.record(REDUCTION, REASON_STATE)
        again = ScheduleTrace.from_json(trace.to_json())
        assert again == trace
        assert "cut1" in str(trace)

    def test_replay_strategy_skips_reduction_records(self):
        trace = ScheduleTrace()
        trace.record(SCHED, 0)
        trace.record(REDUCTION, REASON_STATE)
        strategy = ReplayStrategy(trace)
        assert strategy._trace == [(SCHED, 0)]

    def test_pruned_executions_end_with_a_marker(self):
        # Drive the iteration loop by hand so pruned executions are
        # observable (the campaign loop only retains bug traces): a
        # state-cache hit must surface as status "pruned" with the
        # reduction record as the trace's final decision.
        variant = get("BoundedAsync").buggy
        strategy = DfsStrategy(max_depth=8)
        engine = ReductionEngine("dpor+state-cache")
        strategy.attach_reduction(engine)
        runtime = BugFindingRuntime(
            strategy, max_steps=2_000, workers="inline",
            monitors=tuple(variant.monitors), reduction=engine,
        )
        pruned = []
        for _ in range(200):
            if not strategy.prepare_iteration():
                break
            result = runtime.execute(variant.main, variant.payload)
            if result.status == "pruned":
                pruned.append(result)
        assert pruned, "exhaustive cached DFS never hit the state cache"
        for result in pruned:
            assert result.bug is None
            kind, value = result.trace.decisions[-1]
            assert kind == REDUCTION
            assert value == REASON_STATE


# ---------------------------------------------------------------------------
# Iterative deepening
# ---------------------------------------------------------------------------
class TestIterativeDeepening:
    @pytest.mark.parametrize("mode", ["dpor", "dpor+state-cache"])
    def test_finds_bug_across_deepening_resets(self, mode):
        variant = get("TwoPhaseCommit").buggy
        report = drive(
            variant.main,
            variant.payload,
            IterativeDeepeningDfsStrategy(initial_depth=2, max_depth=8),
            max_iterations=500_000,
            time_limit=120.0,
            max_steps=2_000,
            stop_on_first_bug=True,
            workers="inline",
            monitors=tuple(variant.monitors),
            reduction=mode,
        )
        assert report.bug_found
        assert report.consulted_decisions > 0


# ---------------------------------------------------------------------------
# Incremental enabled set == reference walk
# ---------------------------------------------------------------------------
class _CheckedRuntime(BugFindingRuntime):
    """Asserts, at every scheduling point, that the incremental enabled
    set agrees with the O(#machines) reference walk.  The walk runs
    first — it is side-effect free, while the incremental drain clears
    dirty bits."""

    checks = 0

    def _schedulable(self):
        expected = self._schedulable_walk()
        got = super()._schedulable()
        assert got == expected, (got, expected)
        _CheckedRuntime.checks += 1
        return got


class TestEnabledSetEquivalence:
    @pytest.mark.parametrize("workers", ["inline", "pool"])
    def test_agrees_with_walk(self, workers):
        variant = get("TwoPhaseCommit").buggy
        before = _CheckedRuntime.checks
        report = drive(
            variant.main,
            variant.payload,
            RandomStrategy(seed=5),
            max_iterations=25,
            time_limit=60.0,
            max_steps=2_000,
            stop_on_first_bug=False,
            workers=workers,
            monitors=tuple(variant.monitors),
            runtime_factory=_CheckedRuntime,
        )
        assert report.iterations == 25
        assert _CheckedRuntime.checks > before

    def test_agrees_under_fault_injection(self):
        # Message loss and crash-restart mutate inboxes outside the happy
        # path (dropped sends must NOT wake the target; a restarted
        # machine re-enters with its inbox intact), so run the checked
        # runtime over the fault-injected registry variants too.
        for name in ("RaftLossy", "TwoPhaseCommitCrash"):
            variant = get(name).buggy
            before = _CheckedRuntime.checks
            drive(
                variant.main,
                variant.payload,
                RandomStrategy(seed=9),
                max_iterations=15,
                time_limit=120.0,
                max_steps=2_000,
                stop_on_first_bug=False,
                workers="inline",
                monitors=tuple(variant.monitors),
                faults=variant.faults,
                runtime_factory=_CheckedRuntime,
            )
            assert _CheckedRuntime.checks > before


# ---------------------------------------------------------------------------
# Report surface
# ---------------------------------------------------------------------------
class TestReportSurface:
    def test_summary_mentions_reduction_only_when_active(self):
        quiet = TestReport(strategy="dfs")
        assert "pruned" not in quiet.summary()
        loud = TestReport(
            strategy="dfs", iterations=60,
            distinct_states=483, schedules_pruned=40,
        )
        text = loud.summary()
        assert "states=483" in text
        assert "pruned=40" in text
        assert "40% redundant" in text

    def test_redundancy_ratio(self):
        report = TestReport(
            strategy="dfs", iterations=60, schedules_pruned=40
        )
        assert report.redundancy_ratio == pytest.approx(0.4)
        assert TestReport(strategy="dfs").redundancy_ratio == 0.0

    def test_merge_folds_shard_counters(self):
        a = TestReport(
            strategy="a", iterations=10,
            distinct_states=100, schedules_pruned=7,
        )
        b = TestReport(
            strategy="b", iterations=10,
            distinct_states=50, schedules_pruned=3,
        )
        merged = TestReport.merged([a, b])
        assert merged.distinct_states == 150
        assert merged.schedules_pruned == 10
        detached = merged.detached()
        assert detached.distinct_states == 150
        assert detached.schedules_pruned == 10

    def test_report_json_carries_reduction_stats(self):
        report = _exhaustive("BoundedAsync", 8, 2_000, "dpor+state-cache")
        payload = report_json(report)
        assert payload["distinct_states"] == report.distinct_states
        assert payload["schedules_pruned"] == report.schedules_pruned
        assert payload["redundancy_ratio"] == pytest.approx(
            report.redundancy_ratio
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def run_cli(*args, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=ROOT, timeout=timeout,
    )


class TestCli:
    def test_reduction_flag_end_to_end(self):
        proc = run_cli(
            "test", "TwoPhaseCommit",
            "--strategy", "dfs,max_depth=8",
            "--reduction", "dpor+state-cache",
            "--max-iterations", "500000",
            "--max-steps", "2000",
            "--expect-bug",
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "states=" in proc.stdout
        assert "pruned=" in proc.stdout

    def test_unknown_reduction_rejected(self):
        proc = run_cli(
            "test", "BoundedAsync", "--reduction", "magic",
            "--max-iterations", "5",
        )
        assert proc.returncode == 2
